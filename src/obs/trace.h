// TraceRecorder: simulated-time tracing for the whole platform.
//
// Every layer of the reproduction — gpusim kernels and DMA transfers, GHE
// chunk scheduling, HeService batches, network messages, trainer epochs —
// records spans, instants, and counter samples here, stamped with
// *simulated* seconds from the SimClock / device stream timelines (there is
// no wall-clock anywhere in a trace). The recorder exports Chrome
// trace-event JSON, loadable in Perfetto or chrome://tracing, so a run's
// timeline can be inspected visually: whether multi-stream GHE H2D copies
// actually hide under kernels, where an epoch's communication sits relative
// to its HE batches, and so on.
//
// Track model: a Track is a (process, thread) pair in the trace-viewer
// sense. Processes group component instances ("gpu", "net", "trainer",
// "host"); threads are individual timelines within one ("stream 1",
// "dma h2d", a sending party's name). Components that can have several live
// instances (devices, networks) take a fresh process name from
// UniqueProcessName() so their timelines never share a track.
//
// The recorder is process-global (TraceRecorder::Global()) and disabled by
// default; it auto-enables when FLB_TRACE_OUT or FLB_TRACE is set in the
// environment, and every recording call is a cheap no-op while disabled.
// Platform::Run clears the global recorder at the start of each run, so
// grid drivers (one binary, many runs) export the trace of their most
// recent run — one coherent timeline per file.

#ifndef FLB_OBS_TRACE_H_
#define FLB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/mutex.h"
#include "src/common/sim_clock.h"
#include "src/common/status.h"

namespace flb::obs {

// A (process, thread) pair identifying one timeline in the exported trace.
struct Track {
  int pid = 0;
  int tid = 0;
};

// One key/value pair attached to a trace event. The value is stored
// already-JSON-encoded (numbers verbatim, strings quoted+escaped); build
// them with the Arg() helpers.
struct TraceArg {
  std::string key;
  std::string json_value;
};

TraceArg Arg(std::string key, double value);
TraceArg Arg(std::string key, int value);
TraceArg Arg(std::string key, int64_t value);
TraceArg Arg(std::string key, uint64_t value);
TraceArg Arg(std::string key, bool value);
TraceArg Arg(std::string key, const char* value);
TraceArg Arg(std::string key, const std::string& value);

struct TraceEvent {
  enum class Phase : char {
    kComplete = 'X',  // span: ts + dur
    kInstant = 'i',   // point event
    kCounter = 'C',   // sampled counter value
  };
  Phase phase = Phase::kComplete;
  std::string name;
  std::string category;
  Track track;
  double ts_us = 0.0;   // simulated microseconds
  double dur_us = 0.0;  // complete events only
  double value = 0.0;   // counter events only
  std::vector<TraceArg> args;
};

class TraceRecorder {
 public:
  TraceRecorder();

  // The process-global recorder every instrumented component reports to.
  static TraceRecorder& Global();

  // Lock-free: this is the hot-path "is tracing off?" check every
  // instrumented component makes before building an event.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Returns the Track for (process, thread), registering it on first use.
  // Idempotent: the same name pair always maps to the same pid/tid.
  Track RegisterTrack(const std::string& process, const std::string& thread);

  // Returns `base` the first time it is asked for, then "base#2", "base#3",
  // ... — used by multi-instance components to keep their tracks separate.
  std::string UniqueProcessName(const std::string& base);

  // All timestamps are simulated seconds; the recorder converts to the
  // trace format's microseconds. Calls are no-ops while disabled.
  void Span(Track track, std::string name, std::string category,
            double start_sec, double end_sec, std::vector<TraceArg> args = {});
  void Instant(Track track, std::string name, std::string category,
               double ts_sec, std::vector<TraceArg> args = {});
  void Counter(Track track, std::string name, double ts_sec, double value);

  // Sequential inspection only (tests, post-run readers): returning a
  // reference cannot hand the caller the lock, so this is deliberately
  // outside the analysis. Do not call while recorders may be pushing.
  const std::vector<TraceEvent>& events() const FLB_NO_THREAD_SAFETY_ANALYSIS {
    return events_;
  }
  // Events discarded after the max_events cap was hit.
  uint64_t dropped_events() const {
    common::MutexLock lock(mu_);
    return dropped_;
  }
  // Safety valve for epoch-scale runs; default 1M events.
  void set_max_events(size_t n) {
    common::MutexLock lock(mu_);
    max_events_ = n;
  }

  // Drops recorded events (and the dropped counter). Track registrations
  // persist so cached Track handles and unique names stay valid.
  void Clear();

  // Chrome trace-event JSON: {"traceEvents": [...], ...}. Metadata
  // (process/thread names) is emitted only for tracks that appear in at
  // least one event.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  void Push(TraceEvent event) FLB_EXCLUDES(mu_);

  std::atomic<bool> enabled_{false};
  // Leaf lock: nothing is called out to while mu_ is held, so any
  // component may record events while holding its own lock.
  mutable common::Mutex mu_;
  size_t max_events_ FLB_GUARDED_BY(mu_) = 1000000;
  uint64_t dropped_ FLB_GUARDED_BY(mu_) = 0;
  bool drop_warned_ FLB_GUARDED_BY(mu_) = false;
  std::vector<TraceEvent> events_ FLB_GUARDED_BY(mu_);
  // (process, thread) name -> track; process name -> pid.
  std::map<std::pair<std::string, std::string>, Track> tracks_
      FLB_GUARDED_BY(mu_);
  std::map<std::string, int> pids_ FLB_GUARDED_BY(mu_);
  std::map<std::string, int> unique_counts_ FLB_GUARDED_BY(mu_);
  int next_pid_ FLB_GUARDED_BY(mu_) = 1;
};

// RAII span: reads the simulated clock at construction and destruction and
// records the [start, end] window as a complete event. Inactive (free) when
// the recorder is disabled or the clock is null.
class ScopedSpan {
 public:
  ScopedSpan(const SimClock* clock, Track track, std::string name,
             std::string category = "span",
             TraceRecorder* recorder = &TraceRecorder::Global());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches a key/value to the span (shown in the trace viewer's detail
  // pane). No-op when inactive.
  ScopedSpan& AddArg(TraceArg arg);

 private:
  TraceRecorder* recorder_;
  const SimClock* clock_;
  Track track_;
  std::string name_;
  std::string category_;
  double start_sec_ = 0.0;
  bool active_ = false;
  std::vector<TraceArg> args_;
};

// Charges `seconds` to `kind` on `clock` and records the matching span in
// one call — the single-step form of "this component just spent simulated
// time doing X". No-op charge when clock is null (span is skipped too,
// since there is no timeline position without a clock).
void ChargeSpan(SimClock* clock, CostKind kind, double seconds, Track track,
                std::string name, std::string category,
                std::vector<TraceArg> args = {},
                TraceRecorder* recorder = &TraceRecorder::Global());

// Writes the global recorder to FLB_TRACE_OUT and the global registry to
// FLB_METRICS_OUT (when set), once per process — later calls are no-ops.
// The Global() singletons register this atexit, so every binary (benches,
// examples, the CLI) honors the env vars without wiring an exporter.
void ExportEnvConfigured();

// Publishes the global recorder's drop counter as the
// `flb.obs.trace.dropped_events` gauge in the global registry, so metrics
// consumers (the /metrics scrape, FLB_METRICS_OUT) see event-cap losses
// without parsing the trace. Called by ExportEnvConfigured and by the
// ObsServer /metrics handler just before each snapshot.
void PublishDropMetrics();

#define FLB_OBS_CONCAT_INNER(a, b) a##b
#define FLB_OBS_CONCAT(a, b) FLB_OBS_CONCAT_INNER(a, b)

// Declares a scoped span on the (process, thread) track for the rest of the
// enclosing block: FLB_TRACE_SPAN(clock, "trainer", "homo_lr", "epoch 0");
#define FLB_TRACE_SPAN(clock, process, thread, name)                     \
  ::flb::obs::ScopedSpan FLB_OBS_CONCAT(flb_trace_span_, __LINE__)(      \
      (clock),                                                           \
      ::flb::obs::TraceRecorder::Global().RegisterTrack((process),       \
                                                        (thread)),       \
      (name))

}  // namespace flb::obs

#endif  // FLB_OBS_TRACE_H_
