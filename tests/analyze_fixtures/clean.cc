// fixture: no findings — single-lock nesting, deterministic accounting,
// downward includes only.
#include "src/common/mutex.h"

class Meter {
 public:
  void Add(double seconds) {
    common::MutexLock lock(mu_);
    total_ = total_ + seconds;
  }
  double total() const { return total_; }

 private:
  common::Mutex mu_;
  double total_ = 0.0;
};
