// fixture: FLB007 leaf-lock discipline — recorder-plane calls made while
// the component lock is held, both directly and through a helper.
#include "src/common/mutex.h"

class MetricsSink {
 public:
  void Count(const char* name, long delta);
};

class Cache {
 public:
  void Hit() {
    common::MutexLock lock(mu_);
    hits_ = hits_ + 1;
    metrics_.Count("cache.hit", 1);
  }
  void Miss() {
    common::MutexLock lock(mu_);
    Note();
  }

 private:
  void Note() { recorder_.Count("cache.miss", 1); }
  common::Mutex mu_;
  long hits_ = 0;
  MetricsSink metrics_;
  MetricsSink recorder_;
};
