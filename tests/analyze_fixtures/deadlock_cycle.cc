// fixture: FLB007 lock-order cycle — Credit nests mu_a_ -> mu_b_ while
// Debit nests mu_b_ -> mu_a_; two interleaved threads deadlock.
#include "src/common/mutex.h"

class Account {
 public:
  void Credit() {
    common::MutexLock a(mu_a_);
    common::MutexLock b(mu_b_);
    balance_ = balance_ + 1;
  }
  void Debit() {
    common::MutexLock b(mu_b_);
    common::MutexLock a(mu_a_);
    balance_ = balance_ - 1;
  }

 private:
  common::Mutex mu_a_;
  common::Mutex mu_b_;
  long balance_ = 0;
};
