// fixture: FLB009 — a transport-layer file reaching upward into core.
#include "src/common/status.h"
#include "src/core/platform.h"

int UpwardDependency() { return 1; }
