// fixture: FLB008 determinism taint through helpers — wall-clock flows
// into a sim-time charge via a helper's return value, and entropy flows
// into serialized bytes via a helper's parameter.
#include "src/common/sim_clock.h"

class Serializer {
 public:
  void PutDouble(double v);
};
class SimClock {
 public:
  void Charge(double seconds);
};

double ProbeSeconds() {
  WallTimer timer;
  return timer.ElapsedSeconds();
}

void Pack(Serializer& out, double value) { out.PutDouble(value); }

void Account(SimClock* clock) {
  double cost = ProbeSeconds();
  clock->Charge(cost);
}

void Ship(Serializer& out) {
  std::mt19937 gen;
  double jitter = gen();
  Pack(out, jitter);
}
