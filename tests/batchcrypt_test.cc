// Tests for the BatchCrypt-style codec — including the experimental
// reproduction of the paper's §II claim that fixed-headroom batch encoding
// "suffers from the overflow problem in some cases", which FLBooster's
// ceil(log2 p) headroom avoids by construction.

#include <gtest/gtest.h>

#include <cmath>

#include "src/codec/batch_compressor.h"
#include "src/codec/batchcrypt_codec.h"
#include "src/codec/quantizer.h"
#include "src/common/rng.h"

namespace flb::codec {
namespace {

using mpint::BigInt;

BatchCryptConfig Config(int key_bits = 1024) {
  BatchCryptConfig cfg;
  cfg.alpha = 1.0;
  cfg.value_bits = 14;
  cfg.headroom_bits = 2;
  cfg.key_bits = key_bits;
  return cfg;
}

TEST(BatchCryptTest, CreateValidation) {
  auto cfg = Config();
  cfg.value_bits = 2;
  EXPECT_FALSE(BatchCryptCodec::Create(cfg).ok());
  cfg = Config();
  cfg.headroom_bits = 9;
  EXPECT_FALSE(BatchCryptCodec::Create(cfg).ok());
  cfg = Config();
  cfg.alpha = -1;
  EXPECT_FALSE(BatchCryptCodec::Create(cfg).ok());
  EXPECT_TRUE(BatchCryptCodec::Create(Config()).ok());
}

TEST(BatchCryptTest, SingleContributorRoundTrip) {
  auto codec = BatchCryptCodec::Create(Config()).value();
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.NextDouble() * 2 - 1);
  auto packed = codec.Pack(values).value();
  auto back = codec.Unpack(packed, values.size(), 1).value();
  const double tol = 2.0 / ((1 << 14) - 1);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(back[i], values[i], tol) << i;
  }
}

TEST(BatchCryptTest, ZeroCenteredAggregationWorks) {
  // BatchCrypt's happy path: contributions that cancel stay within the
  // fixed headroom even for many participants.
  auto codec = BatchCryptCodec::Create(Config()).value();
  const int p = 16;  // > 2^headroom, but values alternate sign
  const size_t count = 50;
  std::vector<BigInt> agg;
  std::vector<double> sums(count, 0.0);
  for (int party = 0; party < p; ++party) {
    std::vector<double> vals(count, party % 2 == 0 ? 0.25 : -0.25);
    for (size_t i = 0; i < count; ++i) sums[i] += vals[i];
    auto packed = codec.Pack(vals).value();
    if (agg.empty()) {
      agg = std::move(packed);
    } else {
      for (size_t i = 0; i < agg.size(); ++i) {
        agg[i] = BigInt::Add(agg[i], packed[i]);
      }
    }
  }
  auto decoded = codec.Unpack(agg, count, p).value();
  for (size_t i = 0; i < count; ++i) {
    EXPECT_NEAR(decoded[i], sums[i], 0.01);
  }
}

TEST(BatchCryptTest, SameSignAggregationOverflowsSilently) {
  // The §II failure mode: 8 participants all pushing the same direction
  // (e.g. a consistently positive bias gradient) exceed the 2-bit headroom.
  auto codec = BatchCryptCodec::Create(Config()).value();
  const int p = 8;
  EXPECT_FALSE(codec.GuaranteesNoOverflow(p));
  const size_t count = 20;
  std::vector<BigInt> agg;
  for (int party = 0; party < p; ++party) {
    std::vector<double> vals(count, 0.9);  // strongly same-sign
    auto packed = codec.Pack(vals).value();
    if (agg.empty()) {
      agg = std::move(packed);
    } else {
      for (size_t i = 0; i < agg.size(); ++i) {
        agg[i] = BigInt::Add(agg[i], packed[i]);
      }
    }
  }
  auto decoded = codec.Unpack(agg, count, p).value();
  // True sum is 7.2 per slot; the overflow corrupts the decoding and no
  // error is reported — values come back silently wrong.
  double worst = 0;
  for (double v : decoded) worst = std::max(worst, std::fabs(v - 7.2));
  EXPECT_GT(worst, 1.0);
}

TEST(BatchCryptTest, FlBoosterHeadroomSurvivesTheSameWorkload) {
  // The identical same-sign workload through FLBooster's Quantizer +
  // BatchCompressor (b = ceil(log2 p) = 3) decodes exactly.
  const int p = 8;
  QuantizerConfig qcfg;
  qcfg.alpha = 1.0;
  qcfg.r_bits = 14;
  qcfg.participants = p;
  auto quantizer = Quantizer::Create(qcfg).value();
  auto bc = BatchCompressor::Create(quantizer, 1024).value();

  const size_t count = 20;
  std::vector<BigInt> agg;
  for (int party = 0; party < p; ++party) {
    std::vector<double> vals(count, 0.9);
    auto packed = bc.Pack(vals).value();
    if (agg.empty()) {
      agg = std::move(packed);
    } else {
      for (size_t i = 0; i < agg.size(); ++i) {
        agg[i] = BigInt::Add(agg[i], packed[i]);
      }
    }
  }
  auto decoded = bc.Unpack(agg, count, p).value();
  for (double v : decoded) {
    EXPECT_NEAR(v, 7.2, p * quantizer.MaxAbsoluteError());
  }
}

TEST(BatchCryptTest, GuaranteeMatchesHeadroom) {
  auto codec = BatchCryptCodec::Create(Config()).value();
  EXPECT_TRUE(codec.GuaranteesNoOverflow(1));
  EXPECT_TRUE(codec.GuaranteesNoOverflow(4));
  EXPECT_FALSE(codec.GuaranteesNoOverflow(5));
  // Denser packing than FLBooster on paper (fixed 2-bit headroom packs a
  // couple more slots)...
  QuantizerConfig qcfg;
  qcfg.r_bits = 14;
  qcfg.participants = 64;  // FLBooster must reserve 6 bits
  auto quantizer = Quantizer::Create(qcfg).value();
  auto bc = BatchCompressor::Create(quantizer, 1024).value();
  EXPECT_GE(codec.slots_per_plaintext(), bc.slots_per_plaintext());
  // ...but no safety at that participant count.
  EXPECT_FALSE(codec.GuaranteesNoOverflow(64));
}

}  // namespace
}  // namespace flb::codec
