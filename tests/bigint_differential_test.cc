// Differential tests: BigInt arithmetic checked against native 64/128-bit
// integer arithmetic on randomly drawn small operands, plus cross-checks
// between independent BigInt code paths (Montgomery vs plain, CRT vs plain).

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/crypto/montgomery.h"
#include "src/mpint/bigint.h"

namespace flb::mpint {
namespace {

TEST(BigIntDifferential, AgainstNativeU64) {
  Rng rng(321);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t a = rng.NextU64() >> (rng.NextBelow(40) + 8);
    const uint64_t b = rng.NextU64() >> (rng.NextBelow(40) + 8);
    const BigInt A(a), B(b);
    // add/sub with explicit ordering
    EXPECT_EQ(BigInt::Add(A, B).LowU64(), a + b);
    if (a >= b) EXPECT_EQ(BigInt::Sub(A, B).LowU64(), a - b);
    // mul through 128-bit
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(a) * b;
    const BigInt P = BigInt::Mul(A, B);
    EXPECT_EQ(P.LowU64(), static_cast<uint64_t>(prod));
    EXPECT_EQ(BigInt::ShiftRight(P, 64).LowU64(),
              static_cast<uint64_t>(prod >> 64));
    // div/mod
    if (b != 0) {
      auto qr = BigInt::DivMod(A, B).value();
      EXPECT_EQ(qr.first.LowU64(), a / b);
      EXPECT_EQ(qr.second.LowU64(), a % b);
    }
    // comparisons
    EXPECT_EQ(A < B, a < b);
    EXPECT_EQ(A == B, a == b);
    // bit ops
    EXPECT_EQ(A.BitLength(), a == 0 ? 0 : 64 - __builtin_clzll(a));
    EXPECT_EQ(BigInt::ShiftLeft(A, 3).LowU64(), a << 3);
    EXPECT_EQ(BigInt::ShiftRight(A, 7).LowU64(), a >> 7);
  }
}

TEST(BigIntDifferential, GcdAgainstNative) {
  Rng rng(322);
  auto native_gcd = [](uint64_t x, uint64_t y) {
    while (y != 0) {
      const uint64_t t = x % y;
      x = y;
      y = t;
    }
    return x;
  };
  for (int i = 0; i < 500; ++i) {
    const uint64_t a = rng.NextU64() >> 16;
    const uint64_t b = rng.NextU64() >> 16;
    EXPECT_EQ(BigInt::Gcd(BigInt(a), BigInt(b)).LowU64(), native_gcd(a, b));
  }
}

TEST(BigIntDifferential, ModPowAgainstNativeSquareAndMultiply) {
  Rng rng(323);
  auto native_modpow = [](uint64_t base, uint64_t exp, uint64_t mod) {
    unsigned __int128 result = 1, b = base % mod;
    while (exp > 0) {
      if (exp & 1) result = result * b % mod;
      b = b * b % mod;
      exp >>= 1;
    }
    return static_cast<uint64_t>(result);
  };
  for (int i = 0; i < 300; ++i) {
    const uint64_t mod = (rng.NextU64() >> 34) | 1;  // odd 30-bit
    if (mod < 3) continue;
    const uint64_t base = rng.NextBelow(mod);
    const uint64_t exp = rng.NextBelow(1 << 20);
    EXPECT_EQ(
        BigInt::ModPow(BigInt(base), BigInt(exp), BigInt(mod))->LowU64(),
        native_modpow(base, exp, mod))
        << base << "^" << exp << " mod " << mod;
  }
}

TEST(BigIntDifferential, MontgomeryAgainstNative) {
  Rng rng(324);
  for (int i = 0; i < 200; ++i) {
    const uint64_t mod = (rng.NextU64() >> 34) | 1;
    if (mod < 3) continue;
    auto ctx = crypto::MontgomeryContext::Create(BigInt(mod)).value();
    const uint64_t a = rng.NextBelow(mod);
    const uint64_t b = rng.NextBelow(mod);
    const uint64_t expected = static_cast<uint64_t>(
        static_cast<unsigned __int128>(a) * b % mod);
    EXPECT_EQ(ctx.ModMul(BigInt(a), BigInt(b)).LowU64(), expected);
  }
}

TEST(BigIntDifferential, DecimalAgainstNativeFormatting) {
  Rng rng(325);
  for (int i = 0; i < 200; ++i) {
    const uint64_t v = rng.NextU64();
    EXPECT_EQ(BigInt(v).ToDecimal(), std::to_string(v));
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%llx",
                  static_cast<unsigned long long>(v));
    EXPECT_EQ(BigInt(v).ToHex(), std::string(hex));
  }
}

}  // namespace
}  // namespace flb::mpint
