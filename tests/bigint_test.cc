// Unit and property tests for the multi-precision integer substrate.

#include "src/mpint/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "src/common/rng.h"

namespace flb::mpint {
namespace {

TEST(BigIntBasics, ZeroProperties) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(z.IsOne());
  EXPECT_TRUE(z.IsEven());
  EXPECT_EQ(z.BitLength(), 0);
  EXPECT_EQ(z.WordCount(), 0u);
  EXPECT_EQ(z.ToHex(), "0");
  EXPECT_EQ(z.ToDecimal(), "0");
  EXPECT_EQ(z.LowU64(), 0u);
}

TEST(BigIntBasics, FromU64) {
  BigInt v(0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(v.WordCount(), 2u);
  EXPECT_EQ(v.LowU64(), 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(v.ToHex(), "deadbeefcafebabe");
  EXPECT_TRUE(v.IsEven());
  EXPECT_EQ(v.BitLength(), 64);
}

TEST(BigIntBasics, FromWordsNormalizes) {
  BigInt v = BigInt::FromWords({5, 0, 0});
  EXPECT_EQ(v.WordCount(), 1u);
  EXPECT_EQ(v, BigInt(5));
  EXPECT_TRUE(BigInt::FromWords({0, 0}).IsZero());
}

TEST(BigIntBasics, PowerOfTwo) {
  EXPECT_EQ(BigInt::PowerOfTwo(0), BigInt(1));
  EXPECT_EQ(BigInt::PowerOfTwo(31), BigInt(0x80000000ULL));
  EXPECT_EQ(BigInt::PowerOfTwo(32), BigInt(0x100000000ULL));
  EXPECT_EQ(BigInt::PowerOfTwo(100).BitLength(), 101);
  EXPECT_TRUE(BigInt::PowerOfTwo(100).GetBit(100));
  EXPECT_FALSE(BigInt::PowerOfTwo(100).GetBit(99));
}

TEST(BigIntBasics, CompareOrdering) {
  BigInt a(100), b(200);
  BigInt big = BigInt::PowerOfTwo(80);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, BigInt(100));
  EXPECT_LT(b, big);
  EXPECT_EQ(a.Compare(b), -1);
  EXPECT_EQ(b.Compare(a), 1);
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(BigIntHex, RoundTrip) {
  auto v = BigInt::FromHex("0x1fffFFFFabcdef0123456789");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToHex(), "1fffffffabcdef0123456789");
}

TEST(BigIntHex, Invalid) {
  EXPECT_FALSE(BigInt::FromHex("").ok());
  EXPECT_FALSE(BigInt::FromHex("0x").ok());
  EXPECT_FALSE(BigInt::FromHex("12g4").ok());
}

TEST(BigIntDecimal, RoundTrip) {
  auto v = BigInt::FromDecimal("123456789012345678901234567890");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToDecimal(), "123456789012345678901234567890");
  EXPECT_FALSE(BigInt::FromDecimal("12a").ok());
  EXPECT_FALSE(BigInt::FromDecimal("").ok());
}

TEST(BigIntDecimal, KnownValue) {
  // 2^128 = 340282366920938463463374607431768211456
  BigInt v = BigInt::PowerOfTwo(128);
  EXPECT_EQ(v.ToDecimal(), "340282366920938463463374607431768211456");
}

TEST(BigIntArith, AddWithCarryChain) {
  // (2^96 - 1) + 1 = 2^96: carry must ripple through three limbs.
  BigInt max3 = BigInt::Sub(BigInt::PowerOfTwo(96), BigInt(1));
  EXPECT_EQ(BigInt::Add(max3, BigInt(1)), BigInt::PowerOfTwo(96));
}

TEST(BigIntArith, SubWithBorrowChain) {
  BigInt v = BigInt::PowerOfTwo(96);
  BigInt r = BigInt::Sub(v, BigInt(1));
  EXPECT_EQ(r.BitLength(), 96);
  EXPECT_EQ(BigInt::Add(r, BigInt(1)), v);
}

TEST(BigIntArith, MulKnownValue) {
  auto a = BigInt::FromDecimal("123456789123456789").value();
  auto b = BigInt::FromDecimal("987654321987654321").value();
  EXPECT_EQ(BigInt::Mul(a, b).ToDecimal(),
            "121932631356500531347203169112635269");
}

TEST(BigIntArith, MulByZeroAndOne) {
  BigInt v = BigInt::PowerOfTwo(100);
  EXPECT_TRUE(BigInt::Mul(v, BigInt()).IsZero());
  EXPECT_EQ(BigInt::Mul(v, BigInt(1)), v);
}

TEST(BigIntArith, DivModByZeroIsError) {
  auto r = BigInt::DivMod(BigInt(10), BigInt());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsArithmeticError());
}

TEST(BigIntArith, DivModSmallCases) {
  auto qr = BigInt::DivMod(BigInt(17), BigInt(5)).value();
  EXPECT_EQ(qr.first, BigInt(3));
  EXPECT_EQ(qr.second, BigInt(2));

  // a < b -> q=0, r=a
  qr = BigInt::DivMod(BigInt(3), BigInt(7)).value();
  EXPECT_TRUE(qr.first.IsZero());
  EXPECT_EQ(qr.second, BigInt(3));

  // a == b
  qr = BigInt::DivMod(BigInt(7), BigInt(7)).value();
  EXPECT_EQ(qr.first, BigInt(1));
  EXPECT_TRUE(qr.second.IsZero());
}

TEST(BigIntArith, ShiftRoundTrip) {
  BigInt v = BigInt::FromHex("deadbeefcafebabe0123456789abcdef").value();
  for (int s : {1, 31, 32, 33, 64, 95}) {
    EXPECT_EQ(BigInt::ShiftRight(BigInt::ShiftLeft(v, s), s), v)
        << "shift " << s;
  }
  EXPECT_TRUE(BigInt::ShiftRight(v, 1000).IsZero());
}

TEST(BigIntArith, TruncateBits) {
  BigInt v = BigInt::FromHex("ffffffffffffffffffffffff").value();  // 96 bits
  EXPECT_EQ(BigInt::TruncateBits(v, 4), BigInt(0xF));
  EXPECT_EQ(BigInt::TruncateBits(v, 33).BitLength(), 33);
  EXPECT_EQ(BigInt::TruncateBits(v, 200), v);
  EXPECT_TRUE(BigInt::TruncateBits(v, 0).IsZero());
}

TEST(BigIntArith, GcdLcm) {
  EXPECT_EQ(BigInt::Gcd(BigInt(48), BigInt(36)), BigInt(12));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(5)), BigInt(1));
  EXPECT_EQ(BigInt::Gcd(BigInt(), BigInt(5)), BigInt(5));
  EXPECT_TRUE(BigInt::Gcd(BigInt(), BigInt()).IsZero());
  EXPECT_EQ(BigInt::Lcm(BigInt(4), BigInt(6)), BigInt(12));
  EXPECT_TRUE(BigInt::Lcm(BigInt(), BigInt(5)).IsZero());
}

TEST(BigIntArith, ModInverseKnown) {
  // 3 * 4 = 12 ≡ 1 (mod 11)
  EXPECT_EQ(BigInt::ModInverse(BigInt(3), BigInt(11)).value(), BigInt(4));
  // Not coprime -> error
  EXPECT_FALSE(BigInt::ModInverse(BigInt(6), BigInt(9)).ok());
  EXPECT_FALSE(BigInt::ModInverse(BigInt(5), BigInt(1)).ok());
}

TEST(BigIntArith, ModPowKnown) {
  // 2^10 mod 1000 = 24
  EXPECT_EQ(BigInt::ModPow(BigInt(2), BigInt(10), BigInt(1000)).value(),
            BigInt(24));
  // Fermat: a^(p-1) ≡ 1 mod p for prime p
  EXPECT_EQ(BigInt::ModPow(BigInt(7), BigInt(12), BigInt(13)).value(),
            BigInt(1));
  // e = 0 -> 1
  EXPECT_EQ(BigInt::ModPow(BigInt(7), BigInt(), BigInt(13)).value(),
            BigInt(1));
  // mod 1 -> 0
  EXPECT_TRUE(BigInt::ModPow(BigInt(7), BigInt(5), BigInt(1))->IsZero());
}

TEST(BigIntArith, ToFixedWordsPadsAndTruncates) {
  BigInt v(0x1122334455667788ULL);
  auto w4 = v.ToFixedWords(4);
  ASSERT_EQ(w4.size(), 4u);
  EXPECT_EQ(w4[0], 0x55667788u);
  EXPECT_EQ(w4[1], 0x11223344u);
  EXPECT_EQ(w4[2], 0u);
  auto w1 = v.ToFixedWords(1);
  ASSERT_EQ(w1.size(), 1u);
  EXPECT_EQ(w1[0], 0x55667788u);
}

TEST(BigIntArith, ToU64Range) {
  EXPECT_EQ(BigInt(42).ToU64().value(), 42u);
  EXPECT_FALSE(BigInt::PowerOfTwo(64).ToU64().ok());
}

// ---------------------------------------------------------------------------
// Randomized property tests: algebraic identities over many operand widths.
// ---------------------------------------------------------------------------

class BigIntPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  // Parameter is the operand bit width.
  int bits() const { return GetParam(); }
};

TEST_P(BigIntPropertyTest, AddSubRoundTrip) {
  Rng rng(101 + bits());
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::Random(rng, bits());
    BigInt b = BigInt::Random(rng, bits());
    EXPECT_EQ(BigInt::Sub(BigInt::Add(a, b), b), a);
    EXPECT_EQ(BigInt::Sub(BigInt::Add(a, b), a), b);
  }
}

TEST_P(BigIntPropertyTest, AddCommutativeAssociative) {
  Rng rng(202 + bits());
  for (int i = 0; i < 30; ++i) {
    BigInt a = BigInt::Random(rng, bits());
    BigInt b = BigInt::Random(rng, bits());
    BigInt c = BigInt::Random(rng, bits());
    EXPECT_EQ(BigInt::Add(a, b), BigInt::Add(b, a));
    EXPECT_EQ(BigInt::Add(BigInt::Add(a, b), c),
              BigInt::Add(a, BigInt::Add(b, c)));
  }
}

TEST_P(BigIntPropertyTest, MulCommutativeDistributive) {
  Rng rng(303 + bits());
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::Random(rng, bits());
    BigInt b = BigInt::Random(rng, bits());
    BigInt c = BigInt::Random(rng, bits());
    EXPECT_EQ(BigInt::Mul(a, b), BigInt::Mul(b, a));
    EXPECT_EQ(BigInt::Mul(a, BigInt::Add(b, c)),
              BigInt::Add(BigInt::Mul(a, b), BigInt::Mul(a, c)));
  }
}

TEST_P(BigIntPropertyTest, DivModReconstruction) {
  Rng rng(404 + bits());
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::Random(rng, 2 * bits());
    BigInt b = BigInt::Random(rng, bits());
    if (b.IsZero()) continue;
    auto qr = BigInt::DivMod(a, b).value();
    EXPECT_LT(qr.second, b);
    EXPECT_EQ(BigInt::Add(BigInt::Mul(qr.first, b), qr.second), a);
  }
}

TEST_P(BigIntPropertyTest, HexDecimalRoundTrip) {
  Rng rng(505 + bits());
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::Random(rng, bits());
    EXPECT_EQ(BigInt::FromHex(a.ToHex()).value(), a);
    EXPECT_EQ(BigInt::FromDecimal(a.ToDecimal()).value(), a);
  }
}

TEST_P(BigIntPropertyTest, ModInverseIsInverse) {
  Rng rng(606 + bits());
  // An odd modulus and random values; skip non-coprime draws.
  for (int i = 0; i < 20; ++i) {
    BigInt n = BigInt::Random(rng, bits());
    if (n < BigInt(3)) continue;
    if (n.IsEven()) n = BigInt::Add(n, BigInt(1));
    BigInt a = BigInt::RandomBelow(rng, n);
    if (!BigInt::Gcd(a, n).IsOne()) continue;
    BigInt inv = BigInt::ModInverse(a, n).value();
    EXPECT_EQ(BigInt::ModMul(a, inv, n).value(), BigInt(1));
    EXPECT_LT(inv, n);
  }
}

TEST_P(BigIntPropertyTest, ModPowMatchesRepeatedMul) {
  Rng rng(707 + bits());
  for (int i = 0; i < 10; ++i) {
    BigInt n = BigInt::Random(rng, std::min(bits(), 128));
    if (n < BigInt(2)) continue;
    BigInt a = BigInt::RandomBelow(rng, n);
    const uint64_t e = rng.NextBelow(20);
    BigInt expected(1);
    expected = expected % n;
    for (uint64_t k = 0; k < e; ++k) {
      expected = BigInt::ModMul(expected, a, n).value();
    }
    EXPECT_EQ(BigInt::ModPow(a, BigInt(e), n).value(), expected);
  }
}

TEST_P(BigIntPropertyTest, RandomBelowIsBelow) {
  Rng rng(808 + bits());
  BigInt bound = BigInt::Random(rng, bits());
  if (bound.IsZero()) bound = BigInt(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(BigInt::RandomBelow(rng, bound), bound);
  }
}

// Widths straddle the Karatsuba threshold (40 limbs = 1280 bits) so both
// multiplication paths are exercised.
INSTANTIATE_TEST_SUITE_P(Widths, BigIntPropertyTest,
                         ::testing::Values(16, 32, 64, 128, 256, 512, 1024,
                                           1500, 2048, 4096));

TEST(BigIntKaratsuba, MatchesSchoolbookAcrossThreshold) {
  Rng rng(42);
  // Verify the identity (a+b)^2 = a^2 + 2ab + b^2 at sizes that force
  // Karatsuba recursion, including unbalanced operands.
  for (int bits_a : {1200, 1500, 2600, 5000}) {
    for (int bits_b : {700, 1500, 3000}) {
      BigInt a = BigInt::Random(rng, bits_a);
      BigInt b = BigInt::Random(rng, bits_b);
      BigInt lhs = BigInt::Mul(BigInt::Add(a, b), BigInt::Add(a, b));
      BigInt rhs = BigInt::Add(
          BigInt::Add(BigInt::Mul(a, a), BigInt::Mul(b, b)),
          BigInt::ShiftLeft(BigInt::Mul(a, b), 1));
      EXPECT_EQ(lhs, rhs) << bits_a << "x" << bits_b;
    }
  }
}

}  // namespace
}  // namespace flb::mpint
