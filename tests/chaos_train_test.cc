// End-to-end chaos tests: federated training under a fault plan must stay
// deterministic for a fixed seed, degrade gracefully (partial aggregation,
// straggler dropouts), and survive a mid-training server crash by resuming
// from the last epoch checkpoint.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/he_service.h"
#include "src/core/platform.h"
#include "src/fl/homo_lr.h"
#include "src/fl/partition.h"
#include "src/net/fault.h"
#include "src/net/reliable_channel.h"

namespace flb {
namespace {

using core::EngineKind;
using core::HeService;
using core::HeServiceOptions;

// A full chaos harness: clock + faulty network + reliable channel + modeled
// HE, all deterministic for a fixed plan.
struct ChaosHarness {
  SimClock clock;
  std::shared_ptr<gpusim::Device> device;
  net::Network network{net::LinkSpec::GigabitEthernet(), &clock};
  std::unique_ptr<net::FaultInjector> injector;
  std::unique_ptr<net::ReliableChannel> channel;
  std::unique_ptr<HeService> he;

  fl::FlSession session() {
    return fl::FlSession{he.get(), &network, &clock, injector.get()};
  }
};

std::unique_ptr<ChaosHarness> MakeChaosHarness(const std::string& plan_spec,
                                               int parties) {
  auto h = std::make_unique<ChaosHarness>();
  h->device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), &h->clock,
      core::TraitsFor(EngineKind::kFlBooster).branch_combining);
  if (!plan_spec.empty()) {
    auto plan = net::FaultPlan::Parse(plan_spec);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    h->injector = std::make_unique<net::FaultInjector>(std::move(plan).value(),
                                                       &h->clock);
    h->channel = std::make_unique<net::ReliableChannel>(&h->network);
    h->network.set_fault_injector(h->injector.get());
    h->network.set_reliable_channel(h->channel.get());
  }
  HeServiceOptions opts;
  opts.engine = EngineKind::kFlBooster;
  opts.key_bits = 256;
  opts.r_bits = 14;
  opts.participants = parties;
  opts.frac_bits = 16;
  opts.fp_compress_slot_bits = 40;
  opts.modeled = true;
  auto he = HeService::Create(opts, &h->clock, h->device);
  EXPECT_TRUE(he.ok()) << he.status().ToString();
  h->he = std::move(he).value();
  return h;
}

std::vector<fl::Dataset> Shards(int parties) {
  fl::DatasetSpec spec;
  spec.kind = fl::DatasetKind::kSynthetic;
  spec.rows = 240;
  spec.cols = 12;
  spec.nnz_per_row = 12;
  auto dataset = fl::GenerateDataset(spec).value();
  return fl::HorizontalSplit(dataset, parties).value();
}

fl::TrainConfig ChaosConfig() {
  fl::TrainConfig cfg;
  cfg.max_epochs = 2;
  cfg.batch_size = 32;
  cfg.learning_rate = 0.1;
  cfg.tolerance = 1e-9;
  cfg.straggler_deadline_factor = 2.0;
  return cfg;
}

constexpr char kChaosPlan[] =
    "seed=5;drop=0.3;dup=0.05;corrupt=0.05;straggler=party1:4";

TEST(ChaosTrainTest, SameSeedIsBitIdentical) {
  const int parties = 3;
  auto run = [&] {
    auto h = MakeChaosHarness(kChaosPlan, parties);
    fl::HomoLrTrainer trainer(Shards(parties), h->session(), ChaosConfig());
    auto result = trainer.Train();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    struct Out {
      std::vector<double> weights;
      uint64_t retransmits, crc_failures, bytes, drops;
      fl::RobustnessCounters robustness;
      double sim_seconds;
    } out;
    out.weights = trainer.weights();
    out.retransmits = h->channel->stats().retransmits;
    out.crc_failures = h->channel->stats().crc_failures;
    out.bytes = h->network.stats().bytes;
    out.drops = h->injector->stats().drops;
    out.robustness = result->robustness;
    out.sim_seconds = h->clock.Now();
    return out;
  };
  auto a = run();
  auto b = run();
  // Same plan + seed: the entire chaos run is bit-reproducible.
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t i = 0; i < a.weights.size(); ++i) {
    EXPECT_EQ(a.weights[i], b.weights[i]) << i;  // exact, not approximate
  }
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.crc_failures, b.crc_failures);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.robustness.straggler_dropouts, b.robustness.straggler_dropouts);
  EXPECT_EQ(a.robustness.transport_dropouts, b.robustness.transport_dropouts);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  // The chaos was real: 30% loss forced retransmissions, and the factor-4
  // straggler sits past the 2x deadline gate every round.
  EXPECT_GT(a.retransmits, 0u);
  EXPECT_GT(a.drops, 0u);
  EXPECT_GT(a.robustness.straggler_dropouts, 0u);
  EXPECT_GT(a.robustness.partial_rounds, 0u);
}

TEST(ChaosTrainTest, CleanRunHasZeroRobustnessCounters) {
  const int parties = 3;
  auto h = MakeChaosHarness("", parties);
  fl::HomoLrTrainer trainer(Shards(parties), h->session(), ChaosConfig());
  auto result = trainer.Train().value();
  EXPECT_EQ(result.robustness.TotalDropouts(), 0u);
  EXPECT_EQ(result.robustness.partial_rounds, 0u);
  EXPECT_EQ(result.robustness.skipped_rounds, 0u);
  EXPECT_EQ(result.robustness.checkpoints, 0u);
  EXPECT_EQ(result.robustness.resumes, 0u);
}

core::PlatformConfig ChaosPlatformConfig() {
  core::PlatformConfig cfg;
  cfg.engine = EngineKind::kFlBooster;
  cfg.model = core::FlModelKind::kHomoLr;
  cfg.dataset = fl::DatasetSpec{fl::DatasetKind::kSynthetic, 256, 16, 16, 5};
  cfg.num_parties = 4;
  cfg.key_bits = 1024;
  cfg.modeled = true;
  // Train to near-convergence so the clean accuracy is a stable reference
  // for the 2-point degradation bound.
  cfg.train.max_epochs = 8;
  cfg.train.batch_size = 32;
  cfg.train.tolerance = 1e-9;
  return cfg;
}

TEST(ChaosTrainTest, PlatformChaosRunDegradesGracefully) {
  // The acceptance scenario: 2% loss, one 4x straggler past the deadline
  // gate, and one party crashing mid-training. The run must complete with
  // accuracy within 2 points of the fault-free run.
  auto clean = core::Platform::Run(ChaosPlatformConfig()).value();
  EXPECT_EQ(clean.fault_stats.decisions, 0u);
  EXPECT_EQ(clean.channel_stats.sends, 0u);
  EXPECT_EQ(clean.robustness.TotalDropouts(), 0u);

  auto cfg = ChaosPlatformConfig();
  cfg.train.straggler_deadline_factor = 2.0;
  const double t1 = 0.35 * clean.total_seconds;
  const double t2 = 0.75 * clean.total_seconds;
  cfg.fault_plan = "seed=7;drop=0.02;straggler=party1:4;crash=party2@" +
                   std::to_string(t1) + "-" + std::to_string(t2);
  auto chaos = core::Platform::Run(cfg).value();

  EXPECT_EQ(chaos.train.epochs.size(), 8u);
  EXPECT_NEAR(chaos.train.final_accuracy, clean.train.final_accuracy, 0.02);
  EXPECT_GT(chaos.fault_stats.decisions, 0u);
  EXPECT_GT(chaos.robustness.straggler_dropouts, 0u);
  EXPECT_GT(chaos.robustness.partial_rounds, 0u);
  EXPECT_GT(chaos.channel_stats.sends, 0u);
  EXPECT_GT(chaos.robustness.checkpoints, 0u);
  // Roughly comparable timeline: retransmits and straggler waits add time,
  // while rounds the crashed party sits out save its compute.
  EXPECT_GE(chaos.total_seconds, clean.total_seconds * 0.9);
}

TEST(ChaosTrainTest, ServerCrashResumesFromCheckpoint) {
  auto clean = core::Platform::Run(ChaosPlatformConfig()).value();
  auto cfg = ChaosPlatformConfig();
  // Server down for a window spanning several rounds mid-training; short
  // retry budgets so the clients give up instead of riding it out.
  const double t1 = 0.3 * clean.total_seconds;
  const double t2 = 0.8 * clean.total_seconds;
  cfg.fault_plan =
      "seed=3;crash=server@" + std::to_string(t1) + "-" + std::to_string(t2);
  cfg.reliable.deadline_sec = 0.02 * clean.total_seconds;
  auto chaos = core::Platform::Run(cfg).value();

  EXPECT_GE(chaos.robustness.resumes, 1u);
  EXPECT_GT(chaos.robustness.checkpoints, 0u);
  EXPECT_EQ(chaos.train.epochs.size(), 8u);  // completed despite the outage
  // The run stalls through the outage window, so it ends after recovery.
  EXPECT_GT(chaos.total_seconds, t2);
  EXPECT_NEAR(chaos.train.final_accuracy, clean.train.final_accuracy, 0.05);
}

TEST(ChaosTrainTest, PermanentServerCrashIsATypedError) {
  auto cfg = ChaosPlatformConfig();
  cfg.fault_plan = "seed=3;crash=server@0";  // never recovers
  cfg.reliable.deadline_sec = 0.01;
  cfg.reliable.max_attempts = 3;
  auto chaos = core::Platform::Run(cfg);
  ASSERT_FALSE(chaos.ok());
  EXPECT_TRUE(chaos.status().IsUnavailable()) << chaos.status().ToString();
}

}  // namespace
}  // namespace flb
