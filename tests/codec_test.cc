// Tests for Encoding-Quantization (Eqs. 6-8) and Batch Compression
// (Eqs. 9, 11-13), including the end-to-end packed-aggregation property
// through real Paillier.

#include <gtest/gtest.h>

#include <cmath>

#include "src/codec/batch_compressor.h"
#include "src/codec/quantizer.h"
#include "src/common/rng.h"
#include "src/crypto/paillier.h"

namespace flb::codec {
namespace {

using mpint::BigInt;

Quantizer MakeQuantizer(double alpha = 1.0, int r = 30, int p = 4) {
  QuantizerConfig cfg;
  cfg.alpha = alpha;
  cfg.r_bits = r;
  cfg.participants = p;
  return Quantizer::Create(cfg).value();
}

// ---------------------------------------------------------------------------
// Quantizer
// ---------------------------------------------------------------------------

TEST(QuantizerTest, ConfigValidation) {
  QuantizerConfig cfg;
  cfg.alpha = 0.0;
  EXPECT_FALSE(Quantizer::Create(cfg).ok());
  cfg.alpha = -1.0;
  EXPECT_FALSE(Quantizer::Create(cfg).ok());
  cfg.alpha = 1.0;
  cfg.r_bits = 1;
  EXPECT_FALSE(Quantizer::Create(cfg).ok());
  cfg.r_bits = 53;
  EXPECT_FALSE(Quantizer::Create(cfg).ok());
  cfg.r_bits = 30;
  cfg.participants = 0;
  EXPECT_FALSE(Quantizer::Create(cfg).ok());
  cfg.participants = 1 << 30;
  cfg.r_bits = 52;  // slot would be 52 + 30 = 82 bits
  EXPECT_FALSE(Quantizer::Create(cfg).ok());
}

TEST(QuantizerTest, OverflowBitsMatchParticipants) {
  EXPECT_EQ(MakeQuantizer(1.0, 30, 1).overflow_bits(), 0);
  EXPECT_EQ(MakeQuantizer(1.0, 30, 2).overflow_bits(), 1);
  EXPECT_EQ(MakeQuantizer(1.0, 30, 4).overflow_bits(), 2);
  EXPECT_EQ(MakeQuantizer(1.0, 30, 5).overflow_bits(), 3);
  EXPECT_EQ(MakeQuantizer(1.0, 30, 64).overflow_bits(), 6);
  // The paper's default: r + b = 32.
  EXPECT_EQ(MakeQuantizer(1.0, 30, 4).slot_bits(), 32);
}

TEST(QuantizerTest, EndpointsAndZero) {
  const Quantizer q = MakeQuantizer(0.5, 16, 2);
  EXPECT_EQ(q.Encode(-0.5).value(), 0u);
  EXPECT_EQ(q.Encode(0.5).value(), (uint64_t{1} << 16) - 1);
  // Zero maps to the midpoint.
  const uint64_t mid = q.Encode(0.0).value();
  EXPECT_NEAR(static_cast<double>(mid), ((uint64_t{1} << 16) - 1) / 2.0, 1.0);
}

TEST(QuantizerTest, RoundTripErrorWithinBound) {
  const Quantizer q = MakeQuantizer(1.0, 30, 4);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double m = rng.NextDouble() * 2.0 - 1.0;
    const double back = q.Decode(q.Encode(m).value());
    EXPECT_LE(std::fabs(back - m), q.MaxAbsoluteError()) << m;
  }
}

TEST(QuantizerTest, ErrorShrinksWithMoreBits) {
  EXPECT_LT(MakeQuantizer(1.0, 30).MaxAbsoluteError(),
            MakeQuantizer(1.0, 16).MaxAbsoluteError());
  EXPECT_LT(MakeQuantizer(1.0, 16).MaxAbsoluteError(),
            MakeQuantizer(1.0, 8, 4).MaxAbsoluteError());
}

TEST(QuantizerTest, ClampVsError) {
  QuantizerConfig cfg;
  cfg.alpha = 1.0;
  cfg.clamp = true;
  auto clamping = Quantizer::Create(cfg).value();
  EXPECT_EQ(clamping.Encode(5.0).value(), clamping.Encode(1.0).value());
  EXPECT_EQ(clamping.Encode(-5.0).value(), clamping.Encode(-1.0).value());
  cfg.clamp = false;
  auto strict = Quantizer::Create(cfg).value();
  EXPECT_TRUE(strict.Encode(5.0).status().IsOutOfRange());
  EXPECT_FALSE(strict.Encode(std::nan("")).ok());
}

TEST(QuantizerTest, AggregateDecodeRecoversSum) {
  const Quantizer q = MakeQuantizer(1.0, 30, 8);
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const int k = 1 + static_cast<int>(rng.NextBelow(8));
    double true_sum = 0.0;
    uint64_t slot = 0;
    for (int i = 0; i < k; ++i) {
      const double m = rng.NextDouble() * 2.0 - 1.0;
      true_sum += m;
      slot += q.Encode(m).value();  // slot-wise addition, as under HE
    }
    const double decoded = q.DecodeAggregate(slot, k).value();
    EXPECT_NEAR(decoded, true_sum, k * q.MaxAbsoluteError());
  }
}

TEST(QuantizerTest, AggregateDecodeErrors) {
  const Quantizer q = MakeQuantizer(1.0, 16, 4);
  EXPECT_TRUE(q.DecodeAggregate(0, 0).status().IsOutOfRange());
  EXPECT_TRUE(q.DecodeAggregate(0, 5).status().IsOutOfRange());
  // A slot larger than k * q_max signals overflow.
  EXPECT_TRUE(q.DecodeAggregate(uint64_t{5} << 16, 2)
                  .status()
                  .IsArithmeticError());
}

// Parameterized sweep across quantization widths (property-style).
class QuantizerWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerWidthTest, RoundTripAtWidth) {
  const int r = GetParam();
  const Quantizer q = MakeQuantizer(0.25, r, 4);
  Rng rng(100 + r);
  for (int i = 0; i < 200; ++i) {
    const double m = (rng.NextDouble() - 0.5) * 0.5;
    const double back = q.Decode(q.Encode(m).value());
    EXPECT_LE(std::fabs(back - m), q.MaxAbsoluteError());
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantizerWidthTest,
                         ::testing::Values(8, 12, 16, 20, 24, 30, 40, 52));

// ---------------------------------------------------------------------------
// BatchCompressor
// ---------------------------------------------------------------------------

TEST(BatchCompressorTest, SlotCountsMatchPaper) {
  // Paper: r + b = 32 -> 32 plaintexts at k=1024, 64 at 2048, 128 at 4096.
  // One bit is reserved to keep the packed value below n, so the usable
  // counts are 31 / 63 / 127.
  auto q = MakeQuantizer(1.0, 30, 4);  // slot = 32 bits
  EXPECT_EQ(BatchCompressor::Create(q, 1024)->slots_per_plaintext(), 31);
  EXPECT_EQ(BatchCompressor::Create(q, 2048)->slots_per_plaintext(), 63);
  EXPECT_EQ(BatchCompressor::Create(q, 4096)->slots_per_plaintext(), 127);
  EXPECT_DOUBLE_EQ(BatchCompressor::Create(q, 1024)->TheoreticalCompressionRatio(),
                   32.0);
}

TEST(BatchCompressorTest, CreateValidation) {
  auto q = MakeQuantizer();
  EXPECT_FALSE(BatchCompressor::Create(q, 32).ok());
}

TEST(BatchCompressorTest, PackUnpackRoundTrip) {
  auto bc = BatchCompressor::Create(MakeQuantizer(1.0, 30, 4), 1024).value();
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.NextDouble() * 2 - 1);

  auto packed = bc.Pack(values).value();
  EXPECT_EQ(packed.size(), bc.PlaintextsFor(values.size()));
  auto back = bc.Unpack(packed, values.size(), /*num_contributors=*/1).value();
  ASSERT_EQ(back.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(back[i], values[i], bc.quantizer().MaxAbsoluteError()) << i;
  }
}

TEST(BatchCompressorTest, PartialLastPlaintext) {
  auto bc = BatchCompressor::Create(MakeQuantizer(1.0, 30, 4), 1024).value();
  std::vector<double> values(40, 0.125);  // 31 + 9: two plaintexts
  auto packed = bc.Pack(values).value();
  EXPECT_EQ(packed.size(), 2u);
  auto back = bc.Unpack(packed, 40, 1).value();
  for (double v : back) EXPECT_NEAR(v, 0.125, bc.quantizer().MaxAbsoluteError());
}

TEST(BatchCompressorTest, PackedValueFitsUnderKeyBits) {
  auto bc = BatchCompressor::Create(MakeQuantizer(1.0, 30, 4), 1024).value();
  std::vector<double> values(31, 1.0);  // all-max slots
  auto packed = bc.Pack(values).value();
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_LT(packed[0].BitLength(), 1024);
}

TEST(BatchCompressorTest, SlotIsolationUnderAggregation) {
  // Adding p packed plaintexts must not leak carries across slots.
  const int p = 4;
  auto bc = BatchCompressor::Create(MakeQuantizer(1.0, 30, p), 1024).value();
  Rng rng(4);
  const size_t count = 62;
  std::vector<std::vector<double>> parties(p);
  std::vector<double> sums(count, 0.0);
  for (auto& vals : parties) {
    for (size_t i = 0; i < count; ++i) {
      const double m = rng.NextDouble() * 2 - 1;
      vals.push_back(m);
      sums[i] += m;
    }
  }
  // Integer-add the packed plaintexts (what Paillier aggregation computes).
  std::vector<BigInt> agg = bc.Pack(parties[0]).value();
  for (int j = 1; j < p; ++j) {
    auto packed = bc.Pack(parties[j]).value();
    for (size_t i = 0; i < agg.size(); ++i) {
      agg[i] = BigInt::Add(agg[i], packed[i]);
    }
  }
  auto decoded = bc.Unpack(agg, count, p).value();
  for (size_t i = 0; i < count; ++i) {
    EXPECT_NEAR(decoded[i], sums[i], p * bc.quantizer().MaxAbsoluteError());
  }
}

TEST(BatchCompressorTest, CompressionRatioFormulae) {
  auto bc = BatchCompressor::Create(MakeQuantizer(1.0, 30, 4), 2048).value();
  // 63 slots per plaintext: 630 values -> 10 plaintexts.
  EXPECT_DOUBLE_EQ(bc.CompressionRatio(630), 63.0);
  EXPECT_LE(bc.CompressionRatio(630), bc.TheoreticalCompressionRatio());
  // PSU <= 1 always (Eq. 12).
  EXPECT_LE(bc.PlaintextSpaceUtilization(630), 1.0);
  EXPECT_GT(bc.PlaintextSpaceUtilization(630), 0.9);
  // Partial fill lowers both.
  EXPECT_LT(bc.CompressionRatio(64), bc.CompressionRatio(630));
  EXPECT_DOUBLE_EQ(bc.CompressionRatio(0), 1.0);
  EXPECT_DOUBLE_EQ(bc.PlaintextSpaceUtilization(0), 0.0);
}

TEST(BatchCompressorTest, UnpackBoundsChecked) {
  auto bc = BatchCompressor::Create(MakeQuantizer(1.0, 30, 4), 1024).value();
  auto packed = bc.Pack({0.5, -0.5}).value();
  EXPECT_FALSE(bc.UnpackSlots(packed, 100).ok());
  EXPECT_TRUE(bc.Unpack(packed, 2, 1).ok());
}

TEST(BatchCompressorTest, PackSlotsRejectsOverwideValues) {
  auto bc = BatchCompressor::Create(MakeQuantizer(1.0, 30, 4), 1024).value();
  // Slot width is 32; 2^33 does not fit.
  EXPECT_TRUE(bc.PackSlots({uint64_t{1} << 33}).status().IsOutOfRange());
}

// ---------------------------------------------------------------------------
// End-to-end: packed aggregation through real Paillier (the BC module's
// correctness claim: no erroneous decryptions, exact slot sums).
// ---------------------------------------------------------------------------

TEST(BatchCompressorE2E, PackedPaillierAggregation) {
  Rng rng(5);
  const int key_bits = 256;
  const int p = 3;
  auto keys = crypto::PaillierKeyGen(key_bits, rng).value();
  auto ctx = crypto::PaillierContext::Create(keys).value();

  QuantizerConfig qcfg;
  qcfg.alpha = 1.0;
  qcfg.r_bits = 14;
  qcfg.participants = p;  // slot = 16 bits -> 15 slots per 256-bit key
  auto bc = BatchCompressor::Create(Quantizer::Create(qcfg).value(), key_bits)
                .value();

  const size_t count = 40;
  std::vector<double> sums(count, 0.0);
  std::vector<BigInt> agg_cipher;
  for (int party = 0; party < p; ++party) {
    std::vector<double> grads;
    for (size_t i = 0; i < count; ++i) {
      const double g = rng.NextDouble() * 2 - 1;
      grads.push_back(g);
      sums[i] += g;
    }
    auto packed = bc.Pack(grads).value();
    if (party == 0) {
      agg_cipher.resize(packed.size());
      for (size_t i = 0; i < packed.size(); ++i) {
        agg_cipher[i] = ctx.Encrypt(packed[i], rng).value();
      }
    } else {
      for (size_t i = 0; i < packed.size(); ++i) {
        BigInt c = ctx.Encrypt(packed[i], rng).value();
        agg_cipher[i] = ctx.Add(agg_cipher[i], c).value();
      }
    }
  }
  std::vector<BigInt> agg_plain;
  for (const auto& c : agg_cipher) {
    agg_plain.push_back(ctx.Decrypt(c).value());
  }
  auto decoded = bc.Unpack(agg_plain, count, p).value();
  for (size_t i = 0; i < count; ++i) {
    EXPECT_NEAR(decoded[i], sums[i], p * bc.quantizer().MaxAbsoluteError());
  }
}

}  // namespace
}  // namespace flb::codec
