// Tests for the common runtime: Status/Result, SimClock, Rng, cost model.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/common/status.h"
#include "src/common/timer.h"
#include "src/core/cost_model.h"

namespace flb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, FactoryCodesAndMessages) {
  auto s = Status::InvalidArgument("bad key size");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad key size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad key size");
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ArithmeticError("x").IsArithmeticError());
  EXPECT_TRUE(Status::CryptoError("x").IsCryptoError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCryptoError), "CryptoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> DoubleIt(int v) {
  FLB_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  auto good = DoubleIt(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  auto bad = DoubleIt(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(SimClockTest, ChargesAccumulatePerKind) {
  SimClock clock;
  clock.Charge(CostKind::kCpuHe, 1.0);
  clock.Charge(CostKind::kGpuKernel, 2.0);
  clock.Charge(CostKind::kPcieTransfer, 0.5);
  clock.Charge(CostKind::kNetwork, 3.0);
  clock.Charge(CostKind::kModelCompute, 0.25);
  EXPECT_DOUBLE_EQ(clock.Now(), 6.75);
  EXPECT_DOUBLE_EQ(clock.HeSeconds(), 3.5);  // cpu + gpu + pcie
  EXPECT_DOUBLE_EQ(clock.CommSeconds(), 3.0);
  EXPECT_DOUBLE_EQ(clock.OtherSeconds(), 0.25);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
  EXPECT_DOUBLE_EQ(clock.Elapsed(CostKind::kCpuHe), 0.0);
}

TEST(SimClockTest, KindNames) {
  EXPECT_EQ(CostKindName(CostKind::kCpuHe), "cpu_he");
  EXPECT_EQ(CostKindName(CostKind::kNetwork), "network");
  EXPECT_EQ(CostKindName(CostKind::kEncoding), "encoding");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(2);
  double min = 1, max = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    min = std::min(min, d);
    max = std::max(max, d);
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(3);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ForkDiverges) {
  Rng parent(4);
  Rng child = parent.Fork();
  // Child and parent streams should not be identical.
  bool differs = false;
  for (int i = 0; i < 8; ++i) {
    if (parent.NextU64() != child.NextU64()) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, WordsCoverBothHalves) {
  Rng rng(5);
  auto words = rng.NextWords(101);
  EXPECT_EQ(words.size(), 101u);
  std::set<uint32_t> unique(words.begin(), words.end());
  EXPECT_GT(unique.size(), 95u);  // collisions vanishingly unlikely
}

TEST(CpuCostModelTest, OverheadDominatesCheapOps) {
  core::CpuCostModel model;
  // A homomorphic add is ~26k limb ops: the per-op dispatch overhead is the
  // larger term (the FATE-is-python effect).
  const double add = model.SecondsFor(1, 26000);
  EXPECT_GT(add, model.per_op_overhead_sec);
  EXPECT_LT(add, 2 * model.per_op_overhead_sec);
  // An encryption is ~10M limb ops: arithmetic dominates.
  const double enc = model.SecondsFor(1, 10700000);
  EXPECT_GT(enc, 10 * model.per_op_overhead_sec);
}

TEST(CpuCostModelTest, ChargeTargetsCpuHe) {
  SimClock clock;
  core::CpuCostModel model;
  model.Charge(&clock, 10, 1000000);
  EXPECT_DOUBLE_EQ(clock.Elapsed(CostKind::kCpuHe), clock.Now());
  EXPECT_GT(clock.Now(), 0.0);
  model.Charge(nullptr, 10, 1000);  // null clock is a no-op
  model.Charge(&clock, 0, 1000);    // zero ops is a no-op
}

TEST(WallTimerTest, MeasuresElapsed) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace flb
