// Tests for Montgomery arithmetic, primality, Paillier, and RSA.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/crypto/montgomery.h"
#include "src/crypto/paillier.h"
#include "src/crypto/prime.h"
#include "src/crypto/rsa.h"

namespace flb::crypto {
namespace {

using mpint::BigInt;

// ---------------------------------------------------------------------------
// Montgomery
// ---------------------------------------------------------------------------

TEST(Montgomery, RejectsBadModulus) {
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(0)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(1)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(2)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(100)).ok());  // even
  EXPECT_TRUE(MontgomeryContext::Create(BigInt(3)).ok());
}

TEST(Montgomery, ToFromMontRoundTrip) {
  Rng rng(1);
  BigInt n = BigInt::Random(rng, 256);
  if (n.IsEven()) n = BigInt::Add(n, BigInt(1));
  auto ctx = MontgomeryContext::Create(n).value();
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::RandomBelow(rng, n);
    EXPECT_EQ(ctx.FromMont(ctx.ToMont(a)), a);
  }
}

TEST(Montgomery, ModMulMatchesReference) {
  Rng rng(2);
  for (int bits : {64, 256, 1024, 2048}) {
    BigInt n = BigInt::Random(rng, bits);
    if (n.IsEven()) n = BigInt::Add(n, BigInt(1));
    if (n < BigInt(3)) continue;
    auto ctx = MontgomeryContext::Create(n).value();
    for (int i = 0; i < 10; ++i) {
      BigInt a = BigInt::RandomBelow(rng, n);
      BigInt b = BigInt::RandomBelow(rng, n);
      EXPECT_EQ(ctx.ModMul(a, b), BigInt::ModMul(a, b, n).value())
          << "bits=" << bits;
    }
  }
}

TEST(Montgomery, BasicAlgorithm1MatchesCios) {
  // Algorithm 1 (full-width) and CIOS (word-scanning) compute the same
  // Montgomery product a*b*R^{-1} mod n.
  Rng rng(3);
  for (int bits : {96, 512, 1024}) {
    BigInt n = BigInt::Random(rng, bits);
    if (n.IsEven()) n = BigInt::Add(n, BigInt(1));
    if (n < BigInt(3)) continue;
    auto ctx = MontgomeryContext::Create(n).value();
    for (int i = 0; i < 10; ++i) {
      BigInt a = BigInt::RandomBelow(rng, n);
      BigInt b = BigInt::RandomBelow(rng, n);
      EXPECT_EQ(ctx.MontMul(a, b), ctx.MontMulBasic(a, b)) << "bits=" << bits;
    }
  }
}

TEST(Montgomery, ModPowMatchesReference) {
  Rng rng(4);
  for (int bits : {64, 512, 1024}) {
    BigInt n = BigInt::Random(rng, bits);
    if (n.IsEven()) n = BigInt::Add(n, BigInt(1));
    if (n < BigInt(3)) continue;
    auto ctx = MontgomeryContext::Create(n).value();
    for (int i = 0; i < 5; ++i) {
      BigInt a = BigInt::RandomBelow(rng, n);
      BigInt e = BigInt::Random(rng, 64);
      EXPECT_EQ(ctx.ModPow(a, e), BigInt::ModPow(a, e, n).value())
          << "bits=" << bits;
    }
  }
}

TEST(Montgomery, ModPowEdgeCases) {
  auto ctx = MontgomeryContext::Create(BigInt(13)).value();
  EXPECT_EQ(ctx.ModPow(BigInt(7), BigInt(0)), BigInt(1));
  EXPECT_EQ(ctx.ModPow(BigInt(0), BigInt(5)), BigInt(0));
  EXPECT_EQ(ctx.ModPow(BigInt(1), BigInt(100)), BigInt(1));
  // Base >= n gets reduced.
  EXPECT_EQ(ctx.ModPow(BigInt(20), BigInt(2)), BigInt(49 % 13));
}

class MontgomeryWindowTest : public ::testing::TestWithParam<int> {};

TEST_P(MontgomeryWindowTest, AllWindowWidthsAgree) {
  const int window = GetParam();
  Rng rng(50 + window);
  BigInt n = BigInt::Random(rng, 512);
  if (n.IsEven()) n = BigInt::Add(n, BigInt(1));
  auto ctx = MontgomeryContext::Create(n).value();
  for (int i = 0; i < 5; ++i) {
    BigInt a = BigInt::RandomBelow(rng, n);
    BigInt e = BigInt::Random(rng, 512);
    EXPECT_EQ(ctx.ModPow(a, e, window), BigInt::ModPow(a, e, n).value());
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, MontgomeryWindowTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Primality
// ---------------------------------------------------------------------------

TEST(Prime, SmallKnownValues) {
  Rng rng(7);
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 97ULL, 65537ULL, 2147483647ULL}) {
    EXPECT_TRUE(IsProbablePrime(BigInt(p), rng)) << p;
  }
  for (uint64_t c : {0ULL, 1ULL, 4ULL, 9ULL, 91ULL, 561ULL, 65535ULL,
                     2147483646ULL}) {
    EXPECT_FALSE(IsProbablePrime(BigInt(c), rng)) << c;
  }
}

TEST(Prime, CarmichaelNumbersRejected) {
  // Carmichael numbers fool Fermat tests but not Miller–Rabin.
  Rng rng(8);
  for (uint64_t c : {561ULL, 1105ULL, 1729ULL, 2465ULL, 2821ULL, 6601ULL}) {
    EXPECT_FALSE(IsProbablePrime(BigInt(c), rng)) << c;
  }
}

TEST(Prime, GeneratedPrimesHaveExactBitLength) {
  Rng rng(9);
  for (int bits : {16, 32, 64, 128, 256}) {
    BigInt p = GeneratePrime(bits, rng).value();
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(p.IsOdd());
    EXPECT_TRUE(IsProbablePrime(p, rng));
  }
}

TEST(Prime, RejectsTinyRequests) {
  Rng rng(10);
  EXPECT_FALSE(GeneratePrime(4, rng).ok());
}

TEST(Prime, DistinctPrimeIsDistinct) {
  Rng rng(11);
  BigInt p = GeneratePrime(32, rng).value();
  BigInt q = GenerateDistinctPrime(32, p, rng).value();
  EXPECT_NE(p, q);
}

// ---------------------------------------------------------------------------
// Paillier
// ---------------------------------------------------------------------------

class PaillierTest : public ::testing::TestWithParam<int> {
 protected:
  static constexpr int kSeed = 1234;
  int key_bits() const { return GetParam(); }
};

TEST_P(PaillierTest, EncryptDecryptRoundTrip) {
  Rng rng(kSeed + key_bits());
  auto keys = PaillierKeyGen(key_bits(), rng).value();
  auto ctx = PaillierContext::Create(keys).value();
  for (int i = 0; i < 5; ++i) {
    BigInt m = BigInt::RandomBelow(rng, keys.pub.n);
    BigInt c = ctx.Encrypt(m, rng).value();
    EXPECT_NE(c, m);  // semantic check: ciphertext differs from plaintext
    EXPECT_EQ(ctx.Decrypt(c).value(), m);
  }
}

TEST_P(PaillierTest, AdditiveHomomorphism) {
  Rng rng(kSeed + 1 + key_bits());
  auto keys = PaillierKeyGen(key_bits(), rng).value();
  auto ctx = PaillierContext::Create(keys).value();
  for (int i = 0; i < 5; ++i) {
    BigInt m1 = BigInt::RandomBelow(rng, keys.pub.n);
    BigInt m2 = BigInt::RandomBelow(rng, keys.pub.n);
    BigInt c1 = ctx.Encrypt(m1, rng).value();
    BigInt c2 = ctx.Encrypt(m2, rng).value();
    BigInt sum = ctx.Decrypt(ctx.Add(c1, c2).value()).value();
    EXPECT_EQ(sum, BigInt::Add(m1, m2) % keys.pub.n);
  }
}

TEST_P(PaillierTest, ScalarMultiplication) {
  Rng rng(kSeed + 2 + key_bits());
  auto keys = PaillierKeyGen(key_bits(), rng).value();
  auto ctx = PaillierContext::Create(keys).value();
  BigInt m = BigInt::RandomBelow(rng, keys.pub.n);
  BigInt c = ctx.Encrypt(m, rng).value();
  for (uint64_t k : {0ULL, 1ULL, 2ULL, 17ULL, 1000ULL}) {
    BigInt ck = ctx.ScalarMul(c, BigInt(k)).value();
    EXPECT_EQ(ctx.Decrypt(ck).value(), BigInt::Mul(m, BigInt(k)) % keys.pub.n);
  }
}

TEST_P(PaillierTest, AddPlain) {
  Rng rng(kSeed + 3 + key_bits());
  auto keys = PaillierKeyGen(key_bits(), rng).value();
  auto ctx = PaillierContext::Create(keys).value();
  BigInt m = BigInt::RandomBelow(rng, keys.pub.n);
  BigInt k = BigInt::RandomBelow(rng, keys.pub.n);
  BigInt c = ctx.Encrypt(m, rng).value();
  BigInt c2 = ctx.AddPlain(c, k).value();
  EXPECT_EQ(ctx.Decrypt(c2).value(), BigInt::Add(m, k) % keys.pub.n);
}

INSTANTIATE_TEST_SUITE_P(KeySizes, PaillierTest,
                         ::testing::Values(128, 256, 512));

TEST(Paillier, RandomGMatchesNPlusOne) {
  // The general random-g form and the g=n+1 fast path must agree on the
  // full encrypt/add/decrypt cycle.
  Rng rng(99);
  PaillierOptions opts;
  opts.use_g_n_plus_1 = false;
  auto keys = PaillierKeyGen(128, rng, opts).value();
  ASSERT_FALSE(keys.pub.g_is_n_plus_1);
  ASSERT_NE(keys.pub.g, BigInt::Add(keys.pub.n, BigInt(1)));
  auto ctx = PaillierContext::Create(keys, opts).value();
  BigInt m1(123456), m2(654321);
  BigInt c1 = ctx.Encrypt(m1, rng).value();
  BigInt c2 = ctx.Encrypt(m2, rng).value();
  EXPECT_EQ(ctx.Decrypt(c1).value(), m1);
  EXPECT_EQ(ctx.Decrypt(ctx.Add(c1, c2).value()).value(),
            BigInt::Add(m1, m2));
}

TEST(Paillier, CrtAndPlainDecryptionAgree) {
  Rng rng(100);
  PaillierOptions crt_opts;
  crt_opts.use_crt_decryption = true;
  PaillierOptions plain_opts;
  plain_opts.use_crt_decryption = false;
  auto keys = PaillierKeyGen(256, rng).value();
  auto crt_ctx = PaillierContext::Create(keys, crt_opts).value();
  auto plain_ctx = PaillierContext::Create(keys, plain_opts).value();
  for (int i = 0; i < 10; ++i) {
    BigInt m = BigInt::RandomBelow(rng, keys.pub.n);
    BigInt c = crt_ctx.Encrypt(m, rng).value();
    EXPECT_EQ(crt_ctx.Decrypt(c).value(), m);
    EXPECT_EQ(plain_ctx.Decrypt(c).value(), m);
  }
}

TEST(Paillier, EncryptionIsProbabilistic) {
  Rng rng(101);
  auto keys = PaillierKeyGen(128, rng).value();
  auto ctx = PaillierContext::Create(keys).value();
  BigInt m(42);
  BigInt c1 = ctx.Encrypt(m, rng).value();
  BigInt c2 = ctx.Encrypt(m, rng).value();
  EXPECT_NE(c1, c2);  // fresh randomness each time
  EXPECT_EQ(ctx.Decrypt(c1).value(), ctx.Decrypt(c2).value());
}

TEST(Paillier, ErrorPaths) {
  Rng rng(102);
  auto keys = PaillierKeyGen(128, rng).value();
  auto ctx = PaillierContext::Create(keys).value();
  // Plaintext >= n rejected.
  EXPECT_FALSE(ctx.Encrypt(keys.pub.n, rng).ok());
  // Ciphertext >= n^2 rejected.
  EXPECT_FALSE(ctx.Decrypt(keys.pub.n_squared).ok());
  EXPECT_FALSE(ctx.Add(keys.pub.n_squared, BigInt(1)).ok());
  // Public-only context cannot decrypt.
  auto pub_ctx = PaillierContext::CreatePublic(keys.pub).value();
  BigInt c = pub_ctx.Encrypt(BigInt(5), rng).value();
  EXPECT_FALSE(pub_ctx.Decrypt(c).ok());
  EXPECT_TRUE(pub_ctx.Decrypt(c).status().IsFailedPrecondition());
  // Full context can decrypt what the public context encrypted.
  EXPECT_EQ(ctx.Decrypt(c).value(), BigInt(5));
  // Bad key sizes.
  EXPECT_FALSE(PaillierKeyGen(63, rng).ok());
  EXPECT_FALSE(PaillierKeyGen(32, rng).ok());
}

TEST(Paillier, OpCountsTrack) {
  Rng rng(103);
  auto keys = PaillierKeyGen(128, rng).value();
  auto ctx = PaillierContext::Create(keys).value();
  BigInt c1 = ctx.Encrypt(BigInt(1), rng).value();
  BigInt c2 = ctx.Encrypt(BigInt(2), rng).value();
  BigInt c3 = ctx.Add(c1, c2).value();
  ctx.Decrypt(c3).value();
  EXPECT_EQ(ctx.op_counts().encrypts, 2u);
  EXPECT_EQ(ctx.op_counts().adds, 1u);
  EXPECT_EQ(ctx.op_counts().decrypts, 1u);
  ctx.ResetOpCounts();
  EXPECT_EQ(ctx.op_counts().encrypts, 0u);
}

// ---------------------------------------------------------------------------
// RSA
// ---------------------------------------------------------------------------

class RsaTest : public ::testing::TestWithParam<int> {};

TEST_P(RsaTest, EncryptDecryptRoundTrip) {
  Rng rng(2000 + GetParam());
  auto keys = RsaKeyGen(GetParam(), rng).value();
  auto ctx = RsaContext::Create(keys).value();
  for (int i = 0; i < 5; ++i) {
    BigInt m = BigInt::RandomBelow(rng, keys.pub.n);
    EXPECT_EQ(ctx.Decrypt(ctx.Encrypt(m).value()).value(), m);
  }
}

TEST_P(RsaTest, MultiplicativeHomomorphism) {
  Rng rng(3000 + GetParam());
  auto keys = RsaKeyGen(GetParam(), rng).value();
  auto ctx = RsaContext::Create(keys).value();
  BigInt m1 = BigInt::RandomBelow(rng, keys.pub.n);
  BigInt m2 = BigInt::RandomBelow(rng, keys.pub.n);
  BigInt c = ctx.Mul(ctx.Encrypt(m1).value(), ctx.Encrypt(m2).value()).value();
  EXPECT_EQ(ctx.Decrypt(c).value(), BigInt::Mul(m1, m2) % keys.pub.n);
}

INSTANTIATE_TEST_SUITE_P(KeySizes, RsaTest, ::testing::Values(128, 256, 512));

TEST(Rsa, ErrorPaths) {
  Rng rng(4000);
  auto keys = RsaKeyGen(128, rng).value();
  auto ctx = RsaContext::Create(keys).value();
  EXPECT_FALSE(ctx.Encrypt(keys.pub.n).ok());
  EXPECT_FALSE(ctx.Decrypt(keys.pub.n).ok());
  auto pub_ctx = RsaContext::CreatePublic(keys.pub).value();
  EXPECT_FALSE(pub_ctx.Decrypt(BigInt(5)).ok());
  EXPECT_FALSE(RsaKeyGen(63, rng).ok());
}

TEST(Rsa, DeterministicEncryption) {
  // Textbook RSA is deterministic — a property the homomorphic blinding
  // protocols rely on (same message, same ciphertext).
  Rng rng(4001);
  auto keys = RsaKeyGen(128, rng).value();
  auto ctx = RsaContext::Create(keys).value();
  EXPECT_EQ(ctx.Encrypt(BigInt(7)).value(), ctx.Encrypt(BigInt(7)).value());
}

}  // namespace
}  // namespace flb::crypto
