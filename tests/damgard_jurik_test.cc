// Tests for the Damgård–Jurik generalized Paillier cryptosystem.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/crypto/damgard_jurik.h"

namespace flb::crypto {
namespace {

using mpint::BigInt;

class DamgardJurikTest : public ::testing::TestWithParam<int> {
 protected:
  int s() const { return GetParam(); }
};

TEST_P(DamgardJurikTest, EncryptDecryptRoundTrip) {
  Rng rng(6000 + s());
  auto keys = PaillierKeyGen(128, rng).value();
  auto ctx = DamgardJurikContext::Create(keys, s()).value();
  for (int i = 0; i < 5; ++i) {
    const BigInt m = BigInt::RandomBelow(rng, ctx.plaintext_modulus());
    const BigInt c = ctx.Encrypt(m, rng).value();
    EXPECT_LT(c, ctx.ciphertext_modulus());
    EXPECT_EQ(ctx.Decrypt(c).value(), m) << "s=" << s();
  }
}

TEST_P(DamgardJurikTest, AdditiveHomomorphism) {
  Rng rng(6100 + s());
  auto keys = PaillierKeyGen(128, rng).value();
  auto ctx = DamgardJurikContext::Create(keys, s()).value();
  const BigInt m1 = BigInt::RandomBelow(rng, ctx.plaintext_modulus());
  const BigInt m2 = BigInt::RandomBelow(rng, ctx.plaintext_modulus());
  const BigInt c = ctx.Add(ctx.Encrypt(m1, rng).value(),
                           ctx.Encrypt(m2, rng).value())
                       .value();
  EXPECT_EQ(ctx.Decrypt(c).value(),
            BigInt::Add(m1, m2) % ctx.plaintext_modulus());
}

TEST_P(DamgardJurikTest, ScalarMultiplication) {
  Rng rng(6200 + s());
  auto keys = PaillierKeyGen(128, rng).value();
  auto ctx = DamgardJurikContext::Create(keys, s()).value();
  const BigInt m = BigInt::RandomBelow(rng, ctx.plaintext_modulus());
  const BigInt c = ctx.Encrypt(m, rng).value();
  for (uint64_t k : {0ULL, 1ULL, 7ULL, 1000ULL}) {
    EXPECT_EQ(ctx.Decrypt(ctx.ScalarMul(c, BigInt(k)).value()).value(),
              BigInt::Mul(m, BigInt(k)) % ctx.plaintext_modulus());
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, DamgardJurikTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(DamgardJurik, DegreeOneMatchesPaillierSemantics) {
  // s = 1 is Paillier: a Paillier ciphertext decrypts identically through
  // the DJ context built from the same keys.
  Rng rng(6300);
  auto keys = PaillierKeyGen(128, rng).value();
  auto paillier = PaillierContext::Create(keys).value();
  auto dj = DamgardJurikContext::Create(keys, 1).value();
  const BigInt m(987654321);
  const BigInt c_paillier = paillier.Encrypt(m, rng).value();
  const BigInt c_dj = dj.Encrypt(m, rng).value();
  EXPECT_EQ(dj.Decrypt(c_paillier).value(), m);
  EXPECT_EQ(paillier.Decrypt(c_dj).value(), m);
}

TEST(DamgardJurik, HigherDegreeHoldsValuesAboveN) {
  // The whole point: a plaintext >= n (impossible for Paillier) fits when
  // s >= 2 — s times the packing capacity per ciphertext.
  Rng rng(6400);
  auto keys = PaillierKeyGen(128, rng).value();
  auto dj = DamgardJurikContext::Create(keys, 3).value();
  const BigInt big = BigInt::Add(BigInt::Mul(keys.pub.n, keys.pub.n),
                                 BigInt(12345));  // > n^2
  ASSERT_LT(big, dj.plaintext_modulus());
  const BigInt c = dj.Encrypt(big, rng).value();
  EXPECT_EQ(dj.Decrypt(c).value(), big);
}

TEST(DamgardJurik, ExpansionFactorShrinksWithDegree) {
  Rng rng(6500);
  auto keys = PaillierKeyGen(128, rng).value();
  double prev = 10.0;
  for (int s : {1, 2, 4, 8}) {
    auto dj = DamgardJurikContext::Create(keys, s).value();
    const double expansion =
        static_cast<double>(dj.ciphertext_modulus().BitLength()) /
        dj.plaintext_modulus().BitLength();
    EXPECT_LT(expansion, prev);
    prev = expansion;
  }
  EXPECT_NEAR(prev, 9.0 / 8.0, 0.02);  // (s+1)/s at s=8
}

TEST(DamgardJurik, ErrorPaths) {
  Rng rng(6600);
  auto keys = PaillierKeyGen(128, rng).value();
  EXPECT_FALSE(DamgardJurikContext::Create(keys, 0).ok());
  EXPECT_FALSE(DamgardJurikContext::Create(keys, 9).ok());
  auto dj = DamgardJurikContext::Create(keys, 2).value();
  EXPECT_TRUE(dj.Encrypt(dj.plaintext_modulus(), rng).status().IsOutOfRange());
  EXPECT_TRUE(dj.Decrypt(dj.ciphertext_modulus()).status().IsOutOfRange());
  EXPECT_TRUE(
      dj.Add(dj.ciphertext_modulus(), BigInt(1)).status().IsOutOfRange());
}

TEST(DamgardJurik, EncryptionIsProbabilistic) {
  Rng rng(6700);
  auto keys = PaillierKeyGen(128, rng).value();
  auto dj = DamgardJurikContext::Create(keys, 2).value();
  const BigInt m(42);
  EXPECT_NE(dj.Encrypt(m, rng).value(), dj.Encrypt(m, rng).value());
}

}  // namespace
}  // namespace flb::crypto
