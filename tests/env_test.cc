// Tests for the typed environment-variable helper (src/common/env.h):
// parsing, fallback-on-malformed, range clamping, and the one-shot warning
// counter. Each test uses a unique variable name so tests can run in any
// order without cross-talk.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/common/env.h"

namespace flb::common {
namespace {

class ScopedSetenv {
 public:
  ScopedSetenv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedSetenv() { ::unsetenv(name_.c_str()); }

 private:
  std::string name_;
};

TEST(EnvTest, StrFallsBackWhenUnset) {
  ::unsetenv("FLB_TEST_STR_UNSET");
  EXPECT_EQ(Env::Str("FLB_TEST_STR_UNSET"), "");
  EXPECT_EQ(Env::Str("FLB_TEST_STR_UNSET", "fallback"), "fallback");
  EXPECT_FALSE(Env::Has("FLB_TEST_STR_UNSET"));
}

TEST(EnvTest, StrReadsValue) {
  ScopedSetenv guard("FLB_TEST_STR_SET", "hello");
  EXPECT_EQ(Env::Str("FLB_TEST_STR_SET", "fallback"), "hello");
  EXPECT_TRUE(Env::Has("FLB_TEST_STR_SET"));
}

TEST(EnvTest, FlagSemantics) {
  ::unsetenv("FLB_TEST_FLAG_UNSET");
  EXPECT_FALSE(Env::Flag("FLB_TEST_FLAG_UNSET"));
  EXPECT_TRUE(Env::Flag("FLB_TEST_FLAG_UNSET", true));
  {
    ScopedSetenv guard("FLB_TEST_FLAG", "1");
    EXPECT_TRUE(Env::Flag("FLB_TEST_FLAG"));
  }
  for (const char* falsy : {"0", "false", "FALSE", "off", "no", ""}) {
    ScopedSetenv guard("FLB_TEST_FLAG_FALSY", falsy);
    EXPECT_FALSE(Env::Flag("FLB_TEST_FLAG_FALSY", true)) << falsy;
  }
  {
    ScopedSetenv guard("FLB_TEST_FLAG_TRUTHY", "yes");
    EXPECT_TRUE(Env::Flag("FLB_TEST_FLAG_TRUTHY"));
  }
}

TEST(EnvTest, IntParsesAndClamps) {
  {
    ScopedSetenv guard("FLB_TEST_INT", "42");
    EXPECT_EQ(Env::Int("FLB_TEST_INT", 7), 42);
  }
  ::unsetenv("FLB_TEST_INT_UNSET");
  EXPECT_EQ(Env::Int("FLB_TEST_INT_UNSET", 7), 7);
  {
    // Malformed values warn and fall back, never crash or half-parse.
    ScopedSetenv guard("FLB_TEST_INT_BAD", "4x2");
    EXPECT_EQ(Env::Int("FLB_TEST_INT_BAD", 7), 7);
  }
  {
    ScopedSetenv guard("FLB_TEST_INT_RANGE", "1000000");
    EXPECT_EQ(Env::Int("FLB_TEST_INT_RANGE", 0, 0, 65535), 65535);
  }
  {
    ScopedSetenv guard("FLB_TEST_INT_LOW", "-5");
    EXPECT_EQ(Env::Int("FLB_TEST_INT_LOW", 1, 0, 100), 0);
  }
}

TEST(EnvTest, DoubleParses) {
  {
    ScopedSetenv guard("FLB_TEST_DOUBLE", "2.5");
    EXPECT_DOUBLE_EQ(Env::Double("FLB_TEST_DOUBLE", 1.0), 2.5);
  }
  {
    ScopedSetenv guard("FLB_TEST_DOUBLE_BAD", "not-a-number");
    EXPECT_DOUBLE_EQ(Env::Double("FLB_TEST_DOUBLE_BAD", 1.0), 1.0);
  }
}

TEST(EnvTest, ParseIntIsStrict) {
  int value = 0;
  EXPECT_TRUE(Env::ParseInt("123", &value));
  EXPECT_EQ(value, 123);
  EXPECT_TRUE(Env::ParseInt("-7", &value));
  EXPECT_EQ(value, -7);
  EXPECT_FALSE(Env::ParseInt("", &value));
  EXPECT_FALSE(Env::ParseInt("12abc", &value));
  EXPECT_FALSE(Env::ParseInt("abc", &value));
  EXPECT_FALSE(Env::ParseInt("99999999999999999999", &value));
}

TEST(EnvTest, MalformedValuesCountWarnings) {
  const uint64_t before = Env::warnings();
  {
    ScopedSetenv guard("FLB_TEST_WARN_ONCE", "zzz");
    EXPECT_EQ(Env::Int("FLB_TEST_WARN_ONCE", 3), 3);
    // The same (name, value) pair warns only once.
    EXPECT_EQ(Env::Int("FLB_TEST_WARN_ONCE", 3), 3);
  }
  EXPECT_EQ(Env::warnings(), before + 1);
}

}  // namespace
}  // namespace flb::common
