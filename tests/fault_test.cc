// Tests for the deterministic fault injector and its Network integration.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/sim_clock.h"
#include "src/net/fault.h"
#include "src/net/network.h"

namespace flb::net {
namespace {

TEST(FaultPlanTest, ParseFullSpec) {
  auto plan = FaultPlan::Parse(
                  "seed=7;drop=0.02;dup=0.005;reorder=0.01;corrupt=0.002;"
                  "delay=0.001;jitter=0.0005;straggler=party1:4;"
                  "crash=party2@0.4-0.9;crash=server@2;"
                  "partition=party0|server@0.2-0.3;"
                  "link=party3>server:drop=0.5,delay=0.01")
                  .value();
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.default_link.drop_prob, 0.02);
  EXPECT_DOUBLE_EQ(plan.default_link.dup_prob, 0.005);
  EXPECT_DOUBLE_EQ(plan.default_link.reorder_prob, 0.01);
  EXPECT_DOUBLE_EQ(plan.default_link.corrupt_prob, 0.002);
  EXPECT_DOUBLE_EQ(plan.default_link.extra_delay_sec, 0.001);
  EXPECT_DOUBLE_EQ(plan.default_link.jitter_sec, 0.0005);
  EXPECT_DOUBLE_EQ(plan.straggler_factor.at("party1"), 4.0);
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].party, "party2");
  EXPECT_DOUBLE_EQ(plan.crashes[0].at_sec, 0.4);
  EXPECT_DOUBLE_EQ(plan.crashes[0].recover_sec, 0.9);
  EXPECT_EQ(plan.crashes[1].party, "server");
  EXPECT_LT(plan.crashes[1].recover_sec, 0);  // never recovers
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_EQ(plan.partitions[0].a, "party0");
  EXPECT_EQ(plan.partitions[0].b, "server");
  const LinkFaults& link = plan.per_link.at({"party3", "server"});
  EXPECT_DOUBLE_EQ(link.drop_prob, 0.5);
  EXPECT_DOUBLE_EQ(link.extra_delay_sec, 0.01);
  // Per-link overrides fully replace the defaults.
  EXPECT_DOUBLE_EQ(link.dup_prob, 0.0);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanTest, ParseRejectsMalformedSpecs) {
  EXPECT_TRUE(FaultPlan::Parse("bogus").status().IsInvalidArgument());
  EXPECT_TRUE(FaultPlan::Parse("drop=1.5").status().IsInvalidArgument());
  EXPECT_TRUE(FaultPlan::Parse("drop=-0.1").status().IsInvalidArgument());
  EXPECT_TRUE(FaultPlan::Parse("drop=abc").status().IsInvalidArgument());
  EXPECT_TRUE(FaultPlan::Parse("wibble=0.1").status().IsInvalidArgument());
  EXPECT_TRUE(FaultPlan::Parse("straggler=party1")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      FaultPlan::Parse("straggler=party1:0.5").status().IsInvalidArgument());
  EXPECT_TRUE(FaultPlan::Parse("crash=party1").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultPlan::Parse("crash=party1@1-0.5").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultPlan::Parse("partition=a|b@3-2").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultPlan::Parse("link=a>b;drop=0.1").status().IsInvalidArgument());
}

TEST(FaultPlanTest, ToStringRoundTrips) {
  const std::string spec =
      "seed=11;drop=0.02;straggler=party1:4;crash=party2@0.4-0.9;"
      "partition=party0|server@0.2-0.3;link=party3>server:drop=0.5";
  auto plan = FaultPlan::Parse(spec).value();
  auto reparsed = FaultPlan::Parse(plan.ToString()).value();
  EXPECT_EQ(plan.ToString(), reparsed.ToString());
  EXPECT_EQ(reparsed.seed, 11u);
  EXPECT_DOUBLE_EQ(reparsed.default_link.drop_prob, 0.02);
  EXPECT_EQ(reparsed.crashes.size(), 1u);
  EXPECT_EQ(reparsed.partitions.size(), 1u);
  EXPECT_EQ(reparsed.per_link.size(), 1u);
}

TEST(FaultPlanTest, EmptyAndWhitespaceSpecs) {
  EXPECT_TRUE(FaultPlan::Parse("").value().empty());
  EXPECT_TRUE(FaultPlan::Parse(" ; ;").value().empty());
  // seed alone leaves the plan behaviorally empty.
  EXPECT_TRUE(FaultPlan::Parse("seed=42").value().empty());
}

TEST(FaultInjectorTest, SameSeedSameDecisionSequence) {
  auto plan = FaultPlan::Parse(
                  "seed=3;drop=0.2;dup=0.1;reorder=0.1;corrupt=0.1;"
                  "jitter=0.001")
                  .value();
  FaultInjector a(plan), b(plan);
  for (int i = 0; i < 500; ++i) {
    const auto da = a.OnSend("x", "y", "t", 64);
    const auto db = b.OnSend("x", "y", "t", 64);
    ASSERT_EQ(da.deliver, db.deliver) << i;
    ASSERT_EQ(da.duplicate, db.duplicate) << i;
    ASSERT_EQ(da.reorder, db.reorder) << i;
    ASSERT_EQ(da.corrupt, db.corrupt) << i;
    ASSERT_EQ(da.corrupt_bit, db.corrupt_bit) << i;
    ASSERT_DOUBLE_EQ(da.extra_delay_sec, db.extra_delay_sec) << i;
  }
  EXPECT_EQ(a.stats().drops, b.stats().drops);
  EXPECT_GT(a.stats().drops, 0u);
  EXPECT_GT(a.stats().duplicates, 0u);
  EXPECT_EQ(a.stats().decisions, 500u);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  auto base = FaultPlan::Parse("seed=1;drop=0.3").value();
  auto other = base;
  other.seed = 2;
  FaultInjector a(base), b(other);
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.OnSend("x", "y", "t", 8).deliver !=
        b.OnSend("x", "y", "t", 8).deliver) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, CrashWindowFollowsSimClock) {
  SimClock clock;
  auto plan = FaultPlan::Parse("crash=party2@0.4-0.9").value();
  FaultInjector inj(plan, &clock);
  EXPECT_FALSE(inj.IsCrashed("party2"));
  EXPECT_LT(inj.CrashRecoverTime("party2"), 0);
  clock.Charge(CostKind::kOther, 0.5);  // now = 0.5, inside the window
  EXPECT_TRUE(inj.IsCrashed("party2"));
  EXPECT_DOUBLE_EQ(inj.CrashRecoverTime("party2"), 0.9);
  EXPECT_FALSE(inj.IsCrashed("party1"));
  clock.Charge(CostKind::kOther, 0.5);  // now = 1.0, recovered
  EXPECT_FALSE(inj.IsCrashed("party2"));
  // Messages to (or from) a crashed party are swallowed.
  clock.Reset();
  clock.Charge(CostKind::kOther, 0.5);
  auto d = inj.OnSend("party0", "party2", "t", 8);
  EXPECT_FALSE(d.deliver);
  EXPECT_STREQ(d.fault, "crash_drop");
  EXPECT_FALSE(inj.OnSend("party2", "server", "t", 8).deliver);
}

TEST(FaultInjectorTest, PartitionIsBidirectionalAndWindowed) {
  SimClock clock;
  auto plan = FaultPlan::Parse("partition=party0|server@0.2-0.3").value();
  FaultInjector inj(plan, &clock);
  EXPECT_TRUE(inj.OnSend("party0", "server", "t", 8).deliver);
  clock.Charge(CostKind::kOther, 0.25);
  EXPECT_TRUE(inj.LinkPartitioned("party0", "server"));
  EXPECT_TRUE(inj.LinkPartitioned("server", "party0"));
  EXPECT_FALSE(inj.OnSend("party0", "server", "t", 8).deliver);
  EXPECT_FALSE(inj.OnSend("server", "party0", "t", 8).deliver);
  // Unrelated links are unaffected.
  EXPECT_TRUE(inj.OnSend("party1", "server", "t", 8).deliver);
  clock.Charge(CostKind::kOther, 0.1);  // past the window
  EXPECT_TRUE(inj.OnSend("party0", "server", "t", 8).deliver);
  EXPECT_EQ(inj.stats().partition_drops, 2u);
}

TEST(FaultInjectorTest, StragglerFactorDefaultsToOne) {
  auto plan = FaultPlan::Parse("straggler=party1:4").value();
  FaultInjector inj(plan);
  EXPECT_DOUBLE_EQ(inj.StragglerFactor("party1"), 4.0);
  EXPECT_DOUBLE_EQ(inj.StragglerFactor("party0"), 1.0);
  EXPECT_DOUBLE_EQ(inj.StragglerFactor("server"), 1.0);
}

TEST(FaultNetworkTest, DropChargesTimeButDoesNotEnqueue) {
  SimClock clock;
  Network net(LinkSpec::GigabitEthernet(), &clock);
  auto plan = FaultPlan::Parse("drop=1").value();
  FaultInjector inj(plan, &clock);
  net.set_fault_injector(&inj);
  ASSERT_TRUE(net.SendDirect("a", "b", "t", {1, 2, 3}).ok());
  EXPECT_EQ(net.PendingFor("b"), 0u);  // swallowed
  // The attempt still consumed wire time and bytes.
  EXPECT_GT(clock.Elapsed(CostKind::kNetwork), 0.0);
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_GT(net.stats().bytes, 0u);
}

TEST(FaultNetworkTest, CorruptFlipsExactlyOneBit) {
  Network net;
  auto plan = FaultPlan::Parse("corrupt=1;seed=5").value();
  FaultInjector inj(plan);
  net.set_fault_injector(&inj);
  const std::vector<uint8_t> payload = {0x00, 0xFF, 0x55, 0xAA};
  SendOutcome outcome;
  ASSERT_TRUE(net.SendDirect("a", "b", "t", payload, 0, &outcome).ok());
  EXPECT_TRUE(outcome.delivered);
  EXPECT_TRUE(outcome.corrupted);
  auto msg = net.ReceiveDirect("b", "t").value();
  ASSERT_EQ(msg.payload.size(), payload.size());
  int flipped_bits = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    uint8_t diff = msg.payload[i] ^ payload[i];
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
}

TEST(FaultNetworkTest, DuplicateEnqueuesTwoCopiesAndCountsBytes) {
  Network net;
  auto plan = FaultPlan::Parse("dup=1").value();
  FaultInjector inj(plan);
  net.set_fault_injector(&inj);
  ASSERT_TRUE(net.SendDirect("a", "b", "t", {7, 7}).ok());
  EXPECT_EQ(net.PendingFor("b"), 2u);
  // Both copies crossed the wire.
  EXPECT_EQ(net.stats().bytes, 2u * (2 + 64));
  EXPECT_EQ(net.ReceiveDirect("b", "t")->payload,
            net.ReceiveDirect("b", "t")->payload);
}

TEST(FaultNetworkTest, ReorderJumpsTheQueue) {
  Network net;
  FaultPlan plan;  // start fault-free
  FaultInjector inj(plan);
  net.set_fault_injector(&inj);
  ASSERT_TRUE(net.SendDirect("a", "b", "t", {1}).ok());
  net.set_fault_injector(nullptr);
  auto reordering = FaultPlan::Parse("reorder=1").value();
  FaultInjector inj2(reordering);
  net.set_fault_injector(&inj2);
  ASSERT_TRUE(net.SendDirect("c", "b", "t", {2}).ok());
  // The reordered message overtakes the earlier one.
  EXPECT_EQ(net.ReceiveDirect("b", "t")->from, "c");
  EXPECT_EQ(net.ReceiveDirect("b", "t")->from, "a");
}

TEST(FaultNetworkTest, CrashedReceiverGetsUnavailable) {
  SimClock clock;
  Network net(LinkSpec::GigabitEthernet(), &clock);
  auto plan = FaultPlan::Parse("crash=b@0").value();
  FaultInjector inj(plan, &clock);
  ASSERT_TRUE(net.Send("a", "b", "t", {1}).ok());  // enqueued pre-attach
  net.set_fault_injector(&inj);
  EXPECT_TRUE(net.Receive("b", "t").status().IsUnavailable());
  // A healthy party still sees the legacy NotFound.
  EXPECT_TRUE(net.Receive("c", "t").status().IsNotFound());
}

TEST(FaultNetworkTest, StragglerSlowsItsTransfers) {
  SimClock clock_fast, clock_slow;
  Network fast(LinkSpec::GigabitEthernet(), &clock_fast);
  Network slow(LinkSpec::GigabitEthernet(), &clock_slow);
  auto plan = FaultPlan::Parse("straggler=a:4").value();
  FaultInjector inj(plan, &clock_slow);
  slow.set_fault_injector(&inj);
  const std::vector<uint8_t> payload(1 << 16);
  ASSERT_TRUE(fast.SendDirect("a", "b", "t", payload).ok());
  ASSERT_TRUE(slow.SendDirect("a", "b", "t", payload).ok());
  EXPECT_NEAR(clock_slow.Elapsed(CostKind::kNetwork),
              4.0 * clock_fast.Elapsed(CostKind::kNetwork), 1e-12);
}

}  // namespace
}  // namespace flb::net
