// Tests for the signed fixed-point codec used by per-value hetero legs.

#include <gtest/gtest.h>

#include <cmath>

#include "src/codec/fixed_point.h"
#include "src/common/rng.h"

namespace flb::codec {
namespace {

using mpint::BigInt;

BigInt Modulus(int bits) {
  Rng rng(7);
  BigInt n = BigInt::Random(rng, bits);
  auto w = n.ToFixedWords(bits / 32);
  w[0] |= 1u;
  w.back() |= 0x80000000u;
  return BigInt::FromWords(std::move(w));
}

TEST(FixedPointTest, CreateValidation) {
  const BigInt n = Modulus(256);
  EXPECT_FALSE(FixedPointCodec::Create(n, 4).ok());
  EXPECT_FALSE(FixedPointCodec::Create(n, 61).ok());
  EXPECT_FALSE(FixedPointCodec::Create(BigInt(12345), 24).ok());  // too small
  EXPECT_TRUE(FixedPointCodec::Create(n, 24).ok());
}

TEST(FixedPointTest, RoundTripSignedValues) {
  auto codec = FixedPointCodec::Create(Modulus(512), 24).value();
  for (double v : {0.0, 1.0, -1.0, 0.5, -0.5, 123.456, -123.456, 1e-6,
                   -1e-6, 1e5, -1e5}) {
    const BigInt enc = codec.Encode(v).value();
    EXPECT_NEAR(codec.Decode(enc).value(), v, std::fabs(v) * 1e-6 + 1e-7)
        << v;
  }
}

TEST(FixedPointTest, NegativeValuesWrapAboveHalfModulus) {
  auto codec = FixedPointCodec::Create(Modulus(256), 16).value();
  const BigInt enc = codec.Encode(-2.5).value();
  EXPECT_GT(enc, codec.half_modulus());
  EXPECT_LT(codec.Encode(2.5).value(), codec.half_modulus());
}

TEST(FixedPointTest, AdditionOfResiduesMatchesPlainSum) {
  auto codec = FixedPointCodec::Create(Modulus(512), 24).value();
  const BigInt& n = codec.modulus();
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    const double a = (rng.NextDouble() - 0.5) * 100;
    const double b = (rng.NextDouble() - 0.5) * 100;
    const BigInt sum =
        BigInt::Add(codec.Encode(a).value(), codec.Encode(b).value()) % n;
    EXPECT_NEAR(codec.Decode(sum).value(), a + b, 1e-4);
  }
}

TEST(FixedPointTest, MultiplicationTracksScale) {
  auto codec = FixedPointCodec::Create(Modulus(512), 20).value();
  const BigInt& n = codec.modulus();
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const double a = (rng.NextDouble() - 0.5) * 8;
    const double w = (rng.NextDouble() - 0.5) * 8;
    const BigInt prod = BigInt::Mul(codec.Encode(a).value(),
                                    codec.EncodeScalar(w).value()) %
                        n;
    EXPECT_NEAR(codec.Decode(prod, /*scale_muls=*/1).value(), a * w, 1e-3);
  }
}

TEST(FixedPointTest, EncodeRejectsBadInputs) {
  auto codec = FixedPointCodec::Create(Modulus(256), 24).value();
  EXPECT_FALSE(codec.Encode(std::nan("")).ok());
  EXPECT_FALSE(codec.Encode(std::numeric_limits<double>::infinity()).ok());
  // Magnitude at/near n/2 is ambiguous.
  EXPECT_FALSE(codec.Encode(1e60).ok());
}

TEST(FixedPointTest, DecodeRejectsOutOfRange) {
  auto codec = FixedPointCodec::Create(Modulus(256), 24).value();
  EXPECT_FALSE(codec.Decode(codec.modulus()).ok());
}

TEST(FixedPointTest, PrecisionImprovesWithFracBits) {
  const BigInt n = Modulus(512);
  auto coarse = FixedPointCodec::Create(n, 10).value();
  auto fine = FixedPointCodec::Create(n, 40).value();
  const double v = 0.123456789;
  const double coarse_err =
      std::fabs(coarse.Decode(coarse.Encode(v).value()).value() - v);
  const double fine_err =
      std::fabs(fine.Decode(fine.Encode(v).value()).value() - v);
  EXPECT_LT(fine_err, coarse_err / 1000);
}

}  // namespace
}  // namespace flb::codec
