// Differential fuzz tests for the fixed-width limb kernels
// (src/mpint/fixed_kernels.h) against the generic radix-2^32 oracles:
//
//   * add/sub/mul_pre vs BigInt arithmetic at every supported width,
//     including carry/borrow-chain edges (zero, one, single-bit limbs,
//     all-ones limbs, modulus - 1, the all-ones modulus 2^(32N) - 1);
//   * mont_mul/mont_sqr vs MontgomeryContext::MontMulWordsGeneric — the
//     exact recurrence the GPU simulator parallelizes;
//   * ModPow through the fixed dispatch vs a generic-forced context,
//     including MontMul-count parity (the cost model depends on it);
//   * bit-identity of a real PaillierEval batch with kernels on vs off,
//     and at thread counts 1/2/8 (the determinism contract).
//
// All randomness is seeded (FLB002): equal binaries produce equal streams.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/crypto/montgomery.h"
#include "src/crypto/paillier.h"
#include "src/mpint/bigint.h"
#include "src/mpint/fixed_kernels.h"
#include "src/mpint/limb_matrix.h"

namespace flb {
namespace {

using crypto::MontgomeryContext;
using crypto::PaillierContext;
using crypto::PaillierKeyGen;
using crypto::PaillierOptions;
using mpint::BigInt;
using mpint::LimbMatrix;
using mpint::fixed::FindKernel;
using mpint::fixed::KernelOps;
using mpint::fixed::NegInverseMod2p64;
using mpint::fixed::SupportedWidths;

constexpr uint64_t kSeed = 0xF1B00057'20260808ULL;

// Operand generator biased toward carry/borrow-chain edges: all-ones limb
// runs, single set bits, tiny values, and bound-adjacent values alongside
// uniform draws.
BigInt EdgeValue(Rng& rng, size_t width, const BigInt& bound) {
  switch (rng.NextBelow(8)) {
    case 0:
      return BigInt(0);
    case 1:
      return BigInt(1);
    case 2: {  // single set bit
      const uint64_t bit = rng.NextBelow(static_cast<uint64_t>(width) * 32);
      BigInt v = BigInt::ShiftLeft(BigInt(1), static_cast<int>(bit));
      return bound.IsZero() ? v : v % bound;
    }
    case 3: {  // run of all-ones limbs starting at limb 0
      const size_t run = 1 + rng.NextBelow(static_cast<uint64_t>(width));
      std::vector<uint32_t> w(width, 0);
      for (size_t i = 0; i < run; ++i) w[i] = 0xFFFFFFFFu;
      BigInt v = BigInt::FromWords(std::move(w));
      return bound.IsZero() ? v : v % bound;
    }
    case 4:  // bound - 1 (modulus - 1 when a bound is given)
      if (!bound.IsZero()) return BigInt::Sub(bound, BigInt(1));
      [[fallthrough]];
    default: {
      if (!bound.IsZero()) return BigInt::RandomBelow(rng, bound);
      return BigInt::Random(rng, static_cast<int>(width) * 32);
    }
  }
}

// A random odd width-limb modulus with the top limb significant.
BigInt RandomModulus(Rng& rng, size_t width) {
  auto w = BigInt::Random(rng, static_cast<int>(width) * 32)
               .ToFixedWords(width);
  w[0] |= 1u;
  w[width - 1] |= 0x80000000u;
  return BigInt::FromWords(std::move(w));
}

// The all-ones modulus 2^(32N) - 1: every reduction step carries maximally.
BigInt AllOnesModulus(size_t width) {
  return BigInt::FromWords(std::vector<uint32_t>(width, 0xFFFFFFFFu));
}

TEST(FixedWidthKernelTest, TableCoversPaillierWidthsAndRejectsOddOnes) {
  const std::vector<size_t> widths = SupportedWidths();
  ASSERT_FALSE(widths.empty());
  for (size_t i = 1; i < widths.size(); ++i) {
    EXPECT_LT(widths[i - 1], widths[i]);
  }
  for (size_t w : widths) {
    const KernelOps* k = FindKernel(w);
    ASSERT_NE(k, nullptr) << "width " << w;
    EXPECT_EQ(k->limbs, w);
    EXPECT_NE(k->add, nullptr);
    EXPECT_NE(k->sub, nullptr);
    EXPECT_NE(k->mul_pre, nullptr);
    EXPECT_NE(k->mont_mul, nullptr);
    EXPECT_NE(k->mont_sqr, nullptr);
  }
  // The limb counts backing 1024/2048/4096-bit keys: n = bits/32,
  // n^2 = bits/16, p^2/q^2 = bits/32.
  for (size_t w : {32u, 64u, 128u, 256u}) {
    EXPECT_NE(FindKernel(w), nullptr) << "width " << w;
  }
  // Odd / unsupported widths fall back to the generic path.
  EXPECT_EQ(FindKernel(0), nullptr);
  EXPECT_EQ(FindKernel(3), nullptr);
  EXPECT_EQ(FindKernel(5), nullptr);
  EXPECT_EQ(FindKernel(1024), nullptr);
}

TEST(FixedWidthKernelTest, NegInverseMod2p64IsTheMontgomeryFactor) {
  Rng rng(kSeed + 1);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t n0 = rng.NextU64() | 1u;  // any odd word
    const uint64_t ninv = NegInverseMod2p64(n0);
    // n0 * (-n0^{-1}) == -1 (mod 2^64)  <=>  n0 * ninv + 1 == 0.
    EXPECT_EQ(n0 * ninv + 1u, 0u) << "n0=" << n0;
  }
  EXPECT_EQ(uint64_t{1} * NegInverseMod2p64(1) + 1u, 0u);
  EXPECT_EQ(~uint64_t{0} * NegInverseMod2p64(~uint64_t{0}) + 1u, 0u);
}

TEST(FixedWidthKernelTest, AddSubCarryChainsMatchBigInt) {
  Rng rng(kSeed + 2);
  for (size_t w : SupportedWidths()) {
    const KernelOps* k = FindKernel(w);
    ASSERT_NE(k, nullptr);
    const BigInt full = BigInt::ShiftLeft(BigInt(1), static_cast<int>(w) * 32);
    for (int iter = 0; iter < 50; ++iter) {
      const BigInt a = EdgeValue(rng, w, /*bound=*/BigInt(0));
      const BigInt b = EdgeValue(rng, w, /*bound=*/BigInt(0));
      const auto aw = a.ToFixedWords(w);
      const auto bw = b.ToFixedWords(w);
      std::vector<uint32_t> z(w);

      const uint32_t carry = k->add(z.data(), aw.data(), bw.data());
      const BigInt sum = BigInt::Add(a, b);
      EXPECT_EQ(BigInt::FromWords(z), sum % full);
      EXPECT_EQ(carry, sum >= full ? 1u : 0u);

      const uint32_t borrow = k->sub(z.data(), aw.data(), bw.data());
      if (a >= b) {
        EXPECT_EQ(BigInt::FromWords(z), BigInt::Sub(a, b));
        EXPECT_EQ(borrow, 0u);
      } else {
        // Wraparound: a - b + 2^(32w).
        EXPECT_EQ(BigInt::FromWords(z),
                  BigInt::Sub(BigInt::Add(a, full), b));
        EXPECT_EQ(borrow, 1u);
      }
    }
  }
}

TEST(FixedWidthKernelTest, MulPreMatchesBigIntProduct) {
  Rng rng(kSeed + 3);
  for (size_t w : SupportedWidths()) {
    const KernelOps* k = FindKernel(w);
    ASSERT_NE(k, nullptr);
    for (int iter = 0; iter < 40; ++iter) {
      const BigInt a = EdgeValue(rng, w, /*bound=*/BigInt(0));
      const BigInt b = EdgeValue(rng, w, /*bound=*/BigInt(0));
      const auto aw = a.ToFixedWords(w);
      const auto bw = b.ToFixedWords(w);
      std::vector<uint32_t> z(2 * w);
      k->mul_pre(z.data(), aw.data(), bw.data());
      EXPECT_EQ(BigInt::FromWords(z), BigInt::Mul(a, b))
          << "width " << w << " iter " << iter;
    }
  }
}

TEST(FixedWidthKernelTest, MontMulMatchesGenericOracle) {
  Rng rng(kSeed + 4);
  for (size_t w : SupportedWidths()) {
    const KernelOps* k = FindKernel(w);
    ASSERT_NE(k, nullptr);
    // One random modulus plus the all-ones modulus (maximal carries in
    // every reduction step).
    for (const BigInt& mod : {RandomModulus(rng, w), AllOnesModulus(w)}) {
      const auto oracle = MontgomeryContext::Create(mod, false).value();
      ASSERT_EQ(oracle.fixed_kernel_width(), 0u);
      const auto mw = mod.ToFixedWords(w);
      const uint64_t n0_inv64 = NegInverseMod2p64(
          static_cast<uint64_t>(mw[0]) | (static_cast<uint64_t>(mw[1]) << 32));
      for (int iter = 0; iter < 40; ++iter) {
        const BigInt a = EdgeValue(rng, w, mod);
        const BigInt b = EdgeValue(rng, w, mod);
        const auto aw = a.ToFixedWords(w);
        const auto bw = b.ToFixedWords(w);
        std::vector<uint32_t> z(w), ref(w);
        k->mont_mul(z.data(), aw.data(), bw.data(), mw.data(), n0_inv64);
        oracle.MontMulWordsGeneric(aw.data(), bw.data(), ref.data());
        EXPECT_EQ(z, ref) << "width " << w << " iter " << iter;

        k->mont_sqr(z.data(), aw.data(), mw.data(), n0_inv64);
        oracle.MontMulWordsGeneric(aw.data(), aw.data(), ref.data());
        EXPECT_EQ(z, ref) << "sqr width " << w << " iter " << iter;
      }
      // Aliasing: z == x is allowed.
      BigInt a = EdgeValue(rng, w, mod);
      auto aw = a.ToFixedWords(w);
      std::vector<uint32_t> ref(w);
      oracle.MontMulWordsGeneric(aw.data(), aw.data(), ref.data());
      k->mont_sqr(aw.data(), aw.data(), mw.data(), n0_inv64);
      EXPECT_EQ(aw, ref) << "aliased sqr width " << w;
    }
  }
}

TEST(FixedWidthKernelTest, ContextDispatchAndWordsOpsMatchOracle) {
  Rng rng(kSeed + 5);
  for (size_t w : SupportedWidths()) {
    const BigInt mod = RandomModulus(rng, w);
    const auto fixed = MontgomeryContext::Create(mod, true).value();
    const auto generic = MontgomeryContext::Create(mod, false).value();
    if (mpint::fixed::KernelsEnabled()) {
      EXPECT_EQ(fixed.fixed_kernel_width(), w);
    }
    EXPECT_EQ(generic.fixed_kernel_width(), 0u);
    for (int iter = 0; iter < 20; ++iter) {
      const BigInt a = EdgeValue(rng, w, mod);
      const BigInt b = EdgeValue(rng, w, mod);
      const auto aw = a.ToFixedWords(w);
      const auto bw = b.ToFixedWords(w);
      std::vector<uint32_t> zf(w), zg(w);
      fixed.MontMulWords(aw.data(), bw.data(), zf.data());
      generic.MontMulWords(aw.data(), bw.data(), zg.data());
      EXPECT_EQ(zf, zg);
      fixed.ModMulWords(aw.data(), bw.data(), zf.data());
      generic.ModMulWords(aw.data(), bw.data(), zg.data());
      EXPECT_EQ(zf, zg);
      EXPECT_EQ(BigInt::FromWords(zf),
                BigInt::Mul(a, b) % mod);  // and both match the plain form
      fixed.MontSqrWords(aw.data(), zf.data());
      generic.MontSqrWords(aw.data(), zg.data());
      EXPECT_EQ(zf, zg);
      EXPECT_EQ(fixed.MontMul(a, b), generic.MontMul(a, b));
    }
  }
}

TEST(FixedWidthKernelTest, ModPowMatchesGenericWithCountParity) {
  Rng rng(kSeed + 6);
  // Full sweep on the small widths; spot-check the large ones with short
  // exponents so the test stays fast.
  for (size_t w : SupportedWidths()) {
    const BigInt mod = RandomModulus(rng, w);
    const auto fixed = MontgomeryContext::Create(mod, true).value();
    const auto generic = MontgomeryContext::Create(mod, false).value();
    const int exp_iters = w <= 16 ? 10 : 2;
    const int exp_bits = w <= 16 ? static_cast<int>(w) * 32 : 96;
    for (int iter = 0; iter < exp_iters; ++iter) {
      const BigInt base = EdgeValue(rng, w, mod);
      const BigInt exp = BigInt::Random(rng, exp_bits);
      fixed.ResetCounters();
      generic.ResetCounters();
      const BigInt rf = fixed.ModPow(base, exp);
      const BigInt rg = generic.ModPow(base, exp);
      EXPECT_EQ(rf, rg) << "width " << w << " iter " << iter;
      // The cost model charges per MontMul: the fixed path must count
      // MontMul-for-MontMul with the generic loop.
      EXPECT_EQ(fixed.mont_mul_count(), generic.mont_mul_count())
          << "width " << w << " iter " << iter;
      // Explicit window widths exercise both exponentiation shapes.
      for (int wb : {1, 4}) {
        EXPECT_EQ(fixed.ModPow(base, exp, wb), generic.ModPow(base, exp, wb));
      }
    }
  }
}

TEST(FixedWidthKernelTest, OddWidthFallsBackToGeneric) {
  Rng rng(kSeed + 7);
  // 3 limbs: no kernel instantiation exists, so the context must bind the
  // generic path and still be correct.
  const BigInt mod = RandomModulus(rng, 3);
  const auto ctx = MontgomeryContext::Create(mod, true).value();
  EXPECT_EQ(ctx.fixed_kernel_width(), 0u);
  for (int iter = 0; iter < 20; ++iter) {
    const BigInt a = BigInt::RandomBelow(rng, mod);
    const BigInt b = BigInt::RandomBelow(rng, mod);
    EXPECT_EQ(ctx.ModMul(a, b), BigInt::Mul(a, b) % mod);
  }
}

TEST(LimbMatrixTest, PackUnpackRoundTrip) {
  Rng rng(kSeed + 8);
  const size_t w = 8;
  std::vector<BigInt> values;
  values.push_back(BigInt(0));
  values.push_back(BigInt(1));
  values.push_back(AllOnesModulus(w));
  for (int i = 0; i < 13; ++i) {
    values.push_back(BigInt::Random(rng, static_cast<int>(w) * 32));
  }
  const LimbMatrix m = LimbMatrix::Pack(values, w);
  EXPECT_EQ(m.rows(), values.size());
  EXPECT_EQ(m.width(), w);
  EXPECT_EQ(m.limbs().size(), values.size() * w);
  const std::vector<BigInt> back = m.Unpack();
  ASSERT_EQ(back.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(back[i], values[i]) << i;
    EXPECT_EQ(m.ToBigInt(i), values[i]) << i;
  }
  // Rows are adjacent fixed-width strides of the one buffer.
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_EQ(m.row(i) + w, m.row(i + 1));
  }
  // SetRow pads narrow values and truncates wide ones to the fixed width.
  LimbMatrix t(1, 2);
  t.SetRow(0, BigInt::FromWords({1u, 2u, 3u, 4u}));
  EXPECT_EQ(t.ToBigInt(0), BigInt::FromWords({1u, 2u}));
  t.SetRow(0, BigInt(7));
  EXPECT_EQ(t.ToBigInt(0), BigInt(7));
}

// ---- End-to-end Paillier bit-identity ---------------------------------------

std::vector<BigInt> TestPlaintexts(Rng& rng, const BigInt& n, size_t count) {
  std::vector<BigInt> ms;
  ms.reserve(count);
  ms.push_back(BigInt(0));
  ms.push_back(BigInt(1));
  ms.push_back(BigInt::Sub(n, BigInt(1)));
  while (ms.size() < count) ms.push_back(BigInt::RandomBelow(rng, n));
  return ms;
}

class FixedWidthPaillierTest : public ::testing::TestWithParam<int> {};

TEST_P(FixedWidthPaillierTest, BatchesBitIdenticalWithKernelsOnAndOff) {
  const int key_bits = GetParam();
  Rng key_rng(kSeed + 9);
  const auto keys = PaillierKeyGen(key_bits, key_rng).value();

  PaillierOptions on, off;
  on.use_fixed_width_kernels = true;
  off.use_fixed_width_kernels = false;
  const auto ctx_on = PaillierContext::Create(keys, on).value();
  const auto ctx_off = PaillierContext::Create(keys, off).value();
  if (mpint::fixed::KernelsEnabled()) {
    EXPECT_NE(ctx_on.eval().n2_ctx().fixed_kernel_width(), 0u);
  }
  EXPECT_EQ(ctx_off.eval().n2_ctx().fixed_kernel_width(), 0u);

  Rng data_rng(kSeed + 10);
  const auto ms = TestPlaintexts(data_rng, keys.pub.n, 17);
  const auto ks = TestPlaintexts(data_rng, keys.pub.n, 17);

  // Identical seeds => the encryption streams must be byte-identical.
  Rng ra(kSeed + 11), rb(kSeed + 11);
  const auto ca = ctx_on.EncryptBatch(ms, ra).value();
  const auto cb = ctx_off.EncryptBatch(ms, rb).value();
  EXPECT_EQ(ca, cb);

  EXPECT_EQ(ctx_on.AddBatch(ca, cb).value(), ctx_off.AddBatch(ca, cb).value());
  EXPECT_EQ(ctx_on.AddPlainBatch(ca, ks).value(),
            ctx_off.AddPlainBatch(ca, ks).value());
  EXPECT_EQ(ctx_on.ScalarMulBatch(ca, ks).value(),
            ctx_off.ScalarMulBatch(ca, ks).value());
  const auto pa = ctx_on.DecryptBatch(ca).value();
  EXPECT_EQ(pa, ctx_off.DecryptBatch(ca).value());
  EXPECT_EQ(pa, ms);  // and the crypto still round-trips

  // The kernels must also preserve the modeled-cost accounting.
  EXPECT_EQ(ctx_on.eval().n2_ctx().mont_mul_count(),
            ctx_off.eval().n2_ctx().mont_mul_count());

  // Single-op paths agree too (pool draws advance both contexts equally).
  Rng r1(kSeed + 12), r2(kSeed + 12);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ctx_on.Encrypt(ms[static_cast<size_t>(i)], r1).value(),
              ctx_off.Encrypt(ms[static_cast<size_t>(i)], r2).value());
  }
}

TEST_P(FixedWidthPaillierTest, BatchesInvariantAcrossThreadCounts) {
  const int key_bits = GetParam();
  Rng key_rng(kSeed + 13);
  const auto keys = PaillierKeyGen(key_bits, key_rng).value();
  const auto ctx = PaillierContext::Create(keys).value();

  Rng data_rng(kSeed + 14);
  const auto ms = TestPlaintexts(data_rng, keys.pub.n, 23);
  const auto ks = TestPlaintexts(data_rng, keys.pub.n, 23);

  std::vector<BigInt> first_cipher, first_sum, first_plain;
  for (int threads : {1, 2, 8}) {
    common::ThreadPool pool(threads);
    Rng er(kSeed + 15);  // same seed at every thread count
    const auto cs = ctx.EncryptBatch(ms, er, &pool).value();
    const auto sum = ctx.AddBatch(cs, cs, &pool).value();
    const auto sm = ctx.ScalarMulBatch(cs, ks, &pool).value();
    const auto ps = ctx.DecryptBatch(cs, &pool).value();
    EXPECT_EQ(ps, ms) << threads << " threads";
    if (first_cipher.empty()) {
      first_cipher = cs;
      first_sum = ctx.AddPlainBatch(sum, ks, &pool).value();
      first_plain = sm;
    } else {
      EXPECT_EQ(cs, first_cipher) << threads << " threads";
      EXPECT_EQ(ctx.AddPlainBatch(sum, ks, &pool).value(), first_sum)
          << threads << " threads";
      EXPECT_EQ(sm, first_plain) << threads << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Keys, FixedWidthPaillierTest,
                         ::testing::Values(128, 256));

}  // namespace
}  // namespace flb
