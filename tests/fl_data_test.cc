// Tests for datasets, partitioning, optimizers, and metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/fl/dataset.h"
#include "src/fl/metrics.h"
#include "src/fl/optimizer.h"
#include "src/fl/partition.h"

namespace flb::fl {
namespace {

TEST(DataMatrixTest, BuilderAndAccessors) {
  DataMatrixBuilder builder(4);
  builder.AddRow({{0, 1.0f}, {2, 2.0f}});
  builder.AddRow({});
  builder.AddRow({{3, -1.0f}});
  DataMatrix m = builder.Build();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.RowNnz(0), 2u);
  EXPECT_EQ(m.RowNnz(1), 0u);
  std::vector<double> w{1, 10, 100, 1000};
  EXPECT_DOUBLE_EQ(m.Dot(0, w), 1.0 + 200.0);
  EXPECT_DOUBLE_EQ(m.Dot(1, w), 0.0);
  EXPECT_DOUBLE_EQ(m.Dot(2, w), -1000.0);
  std::vector<double> acc(4, 0.0);
  m.AddScaledRowTo(0, 2.0, &acc);
  EXPECT_DOUBLE_EQ(acc[0], 2.0);
  EXPECT_DOUBLE_EQ(acc[2], 4.0);
}

TEST(DataMatrixTest, FromTripletsSortsAndFills) {
  DataMatrix m = DataMatrix::FromTriplets(
      3, 3, {{2, 1, 5.0f}, {0, 0, 1.0f}, {0, 2, 2.0f}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.RowNnz(0), 2u);
  EXPECT_EQ(m.RowNnz(1), 0u);
  EXPECT_EQ(m.RowNnz(2), 1u);
}

TEST(DataMatrixTest, SliceColumnsRenumbers) {
  DataMatrixBuilder builder(6);
  builder.AddRow({{0, 1.0f}, {3, 2.0f}, {5, 3.0f}});
  DataMatrix m = builder.Build();
  DataMatrix s = m.SliceColumns(3, 6);
  EXPECT_EQ(s.cols(), 3u);
  EXPECT_EQ(s.RowNnz(0), 2u);
  EXPECT_EQ(s.EntryCol(s.RowBegin(0)), 0u);      // was column 3
  EXPECT_EQ(s.EntryCol(s.RowBegin(0) + 1), 2u);  // was column 5
}

TEST(DataMatrixTest, SliceRows) {
  DataMatrixBuilder builder(2);
  for (int r = 0; r < 5; ++r) {
    builder.AddRow({{0, static_cast<float>(r)}});
  }
  DataMatrix m = builder.Build();
  DataMatrix s = m.SliceRows(2, 4);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_FLOAT_EQ(s.EntryValue(s.RowBegin(0)), 2.0f);
  EXPECT_FLOAT_EQ(s.EntryValue(s.RowBegin(1)), 3.0f);
}

class DatasetGenTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(DatasetGenTest, ShapeSparsityAndDeterminism) {
  DatasetSpec spec = DefaultScaleSpec(GetParam());
  spec.rows = 500;
  spec.cols = 128;
  spec.nnz_per_row = std::min<size_t>(spec.nnz_per_row, 64);
  Dataset ds = GenerateDataset(spec).value();
  EXPECT_EQ(ds.rows(), 500u);
  EXPECT_EQ(ds.cols(), 128u);
  EXPECT_EQ(ds.y.size(), 500u);
  // Labels are binary and both classes occur.
  size_t positives = 0;
  for (float y : ds.y) {
    EXPECT_TRUE(y == 0.0f || y == 1.0f);
    positives += y > 0.5f;
  }
  EXPECT_GT(positives, 10u);
  EXPECT_LT(positives, 490u);
  // Deterministic regeneration.
  Dataset ds2 = GenerateDataset(spec).value();
  EXPECT_EQ(ds2.x.nnz(), ds.x.nnz());
  EXPECT_EQ(ds2.y, ds.y);
}

INSTANTIATE_TEST_SUITE_P(Kinds, DatasetGenTest,
                         ::testing::Values(DatasetKind::kRcv1,
                                           DatasetKind::kAvazu,
                                           DatasetKind::kSynthetic));

TEST(DatasetGenTest, CharacterMatchesSource) {
  // RCV1-like and Avazu-like are sparse; Synthetic-like is dense. Avazu has
  // a low positive rate (CTR ~17%).
  auto rcv1 = GenerateDataset(DatasetSpec{DatasetKind::kRcv1, 400, 256, 30, 1})
                  .value();
  auto avazu =
      GenerateDataset(DatasetSpec{DatasetKind::kAvazu, 2000, 256, 10, 1})
          .value();
  auto synth =
      GenerateDataset(DatasetSpec{DatasetKind::kSynthetic, 200, 64, 64, 1})
          .value();
  EXPECT_LT(rcv1.x.density(), 0.25);
  EXPECT_LT(avazu.x.density(), 0.08);
  EXPECT_DOUBLE_EQ(synth.x.density(), 1.0);
  const double ctr =
      std::accumulate(avazu.y.begin(), avazu.y.end(), 0.0) / avazu.y.size();
  EXPECT_GT(ctr, 0.05);
  EXPECT_LT(ctr, 0.35);
  // Avazu features are one-hot (all values 1).
  for (size_t k = 0; k < avazu.x.nnz(); ++k) {
    ASSERT_FLOAT_EQ(avazu.x.EntryValue(k), 1.0f);
  }
}

TEST(DatasetGenTest, PaperScaleSpecsMatchTable2) {
  EXPECT_EQ(PaperScaleSpec(DatasetKind::kRcv1).rows, 677399u);
  EXPECT_EQ(PaperScaleSpec(DatasetKind::kRcv1).cols, 47236u);
  EXPECT_EQ(PaperScaleSpec(DatasetKind::kAvazu).rows, 1719304u);
  EXPECT_EQ(PaperScaleSpec(DatasetKind::kAvazu).cols, 1000000u);
  EXPECT_EQ(PaperScaleSpec(DatasetKind::kSynthetic).rows, 100000u);
  EXPECT_EQ(PaperScaleSpec(DatasetKind::kSynthetic).cols, 10000u);
}

TEST(DatasetGenTest, InvalidSpecs) {
  EXPECT_FALSE(GenerateDataset(DatasetSpec{DatasetKind::kRcv1, 0, 10}).ok());
  EXPECT_FALSE(
      GenerateDataset(DatasetSpec{DatasetKind::kRcv1, 10, 10, 100}).ok());
}

TEST(PartitionTest, HorizontalSplitCoversAllRows) {
  Dataset ds =
      GenerateDataset(DatasetSpec{DatasetKind::kSynthetic, 103, 16, 16, 3})
          .value();
  auto shards = HorizontalSplit(ds, 4).value();
  ASSERT_EQ(shards.size(), 4u);
  size_t total = 0;
  for (const auto& s : shards) {
    EXPECT_EQ(s.cols(), ds.cols());
    EXPECT_EQ(s.y.size(), s.rows());
    total += s.rows();
  }
  EXPECT_EQ(total, ds.rows());
  // Uneven split: 103 = 26+26+26+25 (first shards take the remainder).
  EXPECT_EQ(shards[0].rows(), 26u);
  EXPECT_EQ(shards[3].rows(), 25u);
  EXPECT_FALSE(HorizontalSplit(ds, 0).ok());
  EXPECT_FALSE(HorizontalSplit(ds, 1000).ok());
}

TEST(PartitionTest, VerticalSplitCoversAllCols) {
  Dataset ds =
      GenerateDataset(DatasetSpec{DatasetKind::kRcv1, 50, 37, 10, 3}).value();
  auto part = VerticalSplit(ds, 3).value();
  ASSERT_EQ(part.shards.size(), 3u);
  EXPECT_EQ(part.labels.size(), ds.rows());
  size_t total_cols = 0, total_nnz = 0;
  for (const auto& s : part.shards) {
    EXPECT_EQ(s.x.rows(), ds.rows());
    EXPECT_EQ(s.x.cols(), s.col_end - s.col_begin);
    total_cols += s.x.cols();
    total_nnz += s.x.nnz();
  }
  EXPECT_EQ(total_cols, ds.cols());
  EXPECT_EQ(total_nnz, ds.x.nnz());
}

TEST(OptimizerTest, SgdStep) {
  SgdOptimizer sgd(0.5);
  std::vector<double> w{1.0, 2.0};
  ASSERT_TRUE(sgd.Step(&w, {2.0, -2.0}).ok());
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[1], 3.0);
  EXPECT_FALSE(sgd.Step(&w, {1.0}).ok());
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  // Minimize (w - 3)^2: gradient 2(w - 3).
  AdamOptimizer adam(0.1);
  std::vector<double> w{0.0};
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(adam.Step(&w, {2.0 * (w[0] - 3.0)}).ok());
  }
  EXPECT_NEAR(w[0], 3.0, 0.05);
  adam.Reset();
  EXPECT_FALSE(adam.Step(&w, {1.0, 2.0}).ok());
}

TEST(OptimizerTest, AdamFasterThanSgdOnIllConditioned) {
  // f(w) = 0.5*(100 w0^2 + w1^2): Adam's per-coordinate scaling wins.
  auto run = [](Optimizer& opt) {
    std::vector<double> w{1.0, 1.0};
    for (int i = 0; i < 100; ++i) {
      std::vector<double> g{100.0 * w[0], w[1]};
      EXPECT_TRUE(opt.Step(&w, g).ok());
    }
    return 50.0 * w[0] * w[0] + 0.5 * w[1] * w[1];
  };
  SgdOptimizer sgd(0.009);  // near the stability limit for curvature 100
  AdamOptimizer adam(0.05);
  EXPECT_LT(run(adam), run(sgd));
}

TEST(MetricsTest, SigmoidAndTaylor) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(10.0), 1.0, 1e-4);
  EXPECT_DOUBLE_EQ(TaylorSigmoid(0.0), 0.5);
  // Taylor approximation is close near zero.
  EXPECT_NEAR(TaylorSigmoid(0.2), Sigmoid(0.2), 0.01);
}

TEST(MetricsTest, LogLossAndAccuracy) {
  EXPECT_NEAR(LogLoss(0.9, 1.0), -std::log(0.9), 1e-12);
  EXPECT_NEAR(LogLoss(0.9, 0.0), -std::log(0.1), 1e-9);
  // Extreme probabilities do not produce inf.
  EXPECT_TRUE(std::isfinite(LogLoss(0.0, 1.0)));
  EXPECT_TRUE(std::isfinite(LogLoss(1.0, 0.0)));
  std::vector<double> probs{0.9, 0.2, 0.6};
  std::vector<float> labels{1.0f, 0.0f, 0.0f};
  EXPECT_NEAR(Accuracy(probs, labels), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, ChargeModelComputeAccumulates) {
  SimClock clock;
  ChargeModelCompute(&clock, 5e9);
  EXPECT_NEAR(clock.Elapsed(CostKind::kModelCompute), 1.0, 1e-9);
  ChargeModelCompute(nullptr, 1e9);  // null clock is a no-op
}

}  // namespace
}  // namespace flb::fl
