// Tests for tools/flb_analyze: fixture files with exact rule+line
// expectations, key stability, suppression/baseline semantics, cache
// round-trips, output formats, and the real-tree cleanliness gate.

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/flb_analyze/analyze.h"
#include "tools/flb_analyze/cache.h"
#include "tools/flb_analyze/facts.h"
#include "tools/flb_lint/lint.h"

namespace flb::analyze {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(FLB_ANALYZE_FIXTURE_DIR) + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Loads fixtures by relative name; the relative name becomes the input
// path, so layering fixtures under src/<layer>/ land in a real layer.
Report AnalyzeFixtures(const std::vector<std::string>& names,
                       const Options& opts = Options()) {
  std::vector<lint::FileInput> files;
  for (const std::string& name : names) {
    files.push_back({name, ReadFileOrDie(FixturePath(name))});
  }
  return AnalyzeFiles(files, opts);
}

struct Expected {
  const char* rule;
  int line;
};

void ExpectFindings(const Report& report, const std::vector<Expected>& want) {
  ASSERT_EQ(report.findings.size(), want.size()) << [&] {
    std::ostringstream ss;
    for (const Finding& f : report.findings) {
      ss << "  " << f.rule << " " << f.file << ":" << f.line << "  "
         << f.message << "\n";
    }
    return ss.str();
  }();
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(report.findings[i].rule, want[i].rule) << "finding " << i;
    EXPECT_EQ(report.findings[i].line, want[i].line) << "finding " << i;
  }
}

std::string WriteTempFile(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary);
  out << body;
  return path;
}

TEST(FlbAnalyze, RuleTableIsStable) {
  const auto& rules = Rules();
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_STREQ(rules[0].id, "FLB007");
  EXPECT_STREQ(rules[1].id, "FLB008");
  EXPECT_STREQ(rules[2].id, "FLB009");
  for (const auto& r : rules) {
    EXPECT_NE(std::string(r.name), "");
    EXPECT_NE(std::string(r.summary), "");
  }
}

TEST(FlbAnalyze, DeadlockCycleFixture) {
  Report report = AnalyzeFixtures({"deadlock_cycle.cc"});
  ExpectFindings(report, {{"FLB007", 9}});
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.key, "FLB007|cycle|Account::mu_a_+Account::mu_b_");
  EXPECT_NE(f.message.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(f.message.find("Account::mu_a_"), std::string::npos);
  EXPECT_GE(report.lock_nodes, 2u);
  EXPECT_GE(report.lock_edges, 2u);
}

TEST(FlbAnalyze, DeadlockCallbackFixture) {
  Report report = AnalyzeFixtures({"deadlock_callback.cc"});
  ExpectFindings(report, {{"FLB007", 15}, {"FLB007", 19}});
  // Direct recorder call while holding the component lock.
  EXPECT_EQ(report.findings[0].key,
            "FLB007|held-call|deadlock_callback.cc|Cache::Hit|Count|"
            "Cache::mu_");
  // Transitive: Miss() -> Note() -> recorder; witness names the hop.
  const Finding& via = report.findings[1];
  EXPECT_NE(via.key.find("Cache::Miss|Note"), std::string::npos);
  std::string witness;
  for (const std::string& hop : via.witness) witness += hop + "\n";
  EXPECT_NE(witness.find("Note"), std::string::npos) << witness;
}

TEST(FlbAnalyze, TaintHelperFixture) {
  Report report = AnalyzeFixtures({"taint_helper.cc"});
  ExpectFindings(report, {{"FLB008", 24}, {"FLB008", 30}});
  // Wall clock reaches the sim-time charge through ProbeSeconds' return.
  EXPECT_NE(report.findings[0].key.find("charge"), std::string::npos);
  EXPECT_NE(report.findings[0].key.find("wall_clock"), std::string::npos);
  // Entropy reaches serialized bytes through Pack's parameter.
  EXPECT_NE(report.findings[1].key.find("serialize"), std::string::npos);
  EXPECT_NE(report.findings[1].key.find("entropy"), std::string::npos);
}

TEST(FlbAnalyze, LayeringUpwardFixture) {
  Report report = AnalyzeFixtures({"src/net/upward.cc"});
  ExpectFindings(report, {{"FLB009", 3}});
  EXPECT_EQ(report.findings[0].key,
            "FLB009|src/net/upward.cc|src/core/platform.h");
  // The downward include (line 2) is not flagged.
  EXPECT_GE(report.include_edges, 2u);
}

TEST(FlbAnalyze, LayeringExceptionSanctionsBackEdge) {
  Options opts;
  opts.layering_exceptions.push_back(
      {"src/net/upward.cc", "src/core", "fixture-sanctioned back-edge"});
  Report report = AnalyzeFixtures({"src/net/upward.cc"}, opts);
  ExpectFindings(report, {});

  // A wildcard `from` sanctions the same edge for every file.
  Options wild;
  wild.layering_exceptions.push_back({"*", "src/core", "fixture wildcard"});
  ExpectFindings(AnalyzeFixtures({"src/net/upward.cc"}, wild), {});
}

TEST(FlbAnalyze, CleanFixtureHasNoFindings) {
  Report report = AnalyzeFixtures({"clean.cc"});
  ExpectFindings(report, {});
  EXPECT_EQ(report.files_scanned, 1u);
  EXPECT_GE(report.functions_analyzed, 2u);
}

TEST(FlbAnalyze, BaselineSuppressesKnownFindingByKey) {
  Options opts;
  opts.baseline.insert("FLB007|cycle|Account::mu_a_+Account::mu_b_");
  Report report = AnalyzeFixtures({"deadlock_cycle.cc"}, opts);
  ExpectFindings(report, {});
  EXPECT_EQ(report.baselined, 1u);
}

TEST(FlbAnalyze, JustifiedInlineAllowSuppresses) {
  const std::string src =
      "class A {\n"
      " public:\n"
      "  void X() {\n"
      "    common::MutexLock a(mu_a_);\n"
      "    common::MutexLock b(mu_b_);  // flb-lint: allow(FLB007) fixture "
      "pins this order\n"
      "  }\n"
      "  void Y() {\n"
      "    common::MutexLock b(mu_b_);\n"
      "    common::MutexLock a(mu_a_);\n"
      "  }\n"
      " private:\n"
      "  common::Mutex mu_a_;\n"
      "  common::Mutex mu_b_;\n"
      "};\n";
  Report report = AnalyzeFiles({{"allow_ok.cc", src}}, Options());
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressed, 1u);
  EXPECT_EQ(report.unjustified_allows, 0u);
}

TEST(FlbAnalyze, BareAllowWithoutReasonDoesNotSuppress) {
  const std::string src =
      "class A {\n"
      " public:\n"
      "  void X() {\n"
      "    common::MutexLock a(mu_a_);\n"
      "    common::MutexLock b(mu_b_);  // flb-lint: allow(FLB007)\n"
      "  }\n"
      "  void Y() {\n"
      "    common::MutexLock b(mu_b_);\n"
      "    common::MutexLock a(mu_a_);\n"
      "  }\n"
      " private:\n"
      "  common::Mutex mu_a_;\n"
      "  common::Mutex mu_b_;\n"
      "};\n";
  Report report = AnalyzeFiles({{"allow_bare.cc", src}}, Options());
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "FLB007");
  EXPECT_EQ(report.findings[0].line, 5);
  EXPECT_EQ(report.suppressed, 0u);
  EXPECT_EQ(report.unjustified_allows, 1u);
}

TEST(FlbAnalyze, ExceptionsFileParsesAndRequiresReason) {
  std::vector<LayerException> out;
  std::string error;
  ASSERT_TRUE(LoadExceptionsFile(
      std::string(FLB_SOURCE_ROOT) + "/tools/flb_analyze/layering_exceptions.txt",
      &out, &error))
      << error;
  ASSERT_GE(out.size(), 3u);
  for (const LayerException& e : out) {
    EXPECT_NE(e.from, "");
    EXPECT_NE(e.to_layer.find("src/"), std::string::npos);
    EXPECT_NE(e.reason, "") << e.from << " -> " << e.to_layer;
  }

  const std::string missing_reason =
      WriteTempFile("exceptions_bad.txt", "src/net/a.cc -> src/core\n");
  out.clear();
  EXPECT_FALSE(LoadExceptionsFile(missing_reason, &out, &error));
  EXPECT_NE(error, "");
}

TEST(FlbAnalyze, BaselineFileParsesAndRoundTrips) {
  std::set<std::string> keys;
  std::string error;
  ASSERT_TRUE(LoadBaselineFile(
      std::string(FLB_SOURCE_ROOT) + "/tools/flb_analyze/analyze_baseline.txt",
      &keys, &error))
      << error;
  for (const std::string& k : keys) {
    EXPECT_EQ(k.rfind("FLB", 0), 0u) << k;
  }

  // ReportToBaseline emits exactly the keys that silence the findings.
  Report dirty = AnalyzeFixtures({"deadlock_cycle.cc", "taint_helper.cc"});
  ASSERT_FALSE(dirty.findings.empty());
  const std::string path =
      WriteTempFile("roundtrip_baseline.txt", ReportToBaseline(dirty));
  Options opts;
  ASSERT_TRUE(LoadBaselineFile(path, &opts.baseline, &error)) << error;
  Report clean = AnalyzeFixtures({"deadlock_cycle.cc", "taint_helper.cc"}, opts);
  EXPECT_TRUE(clean.findings.empty());
  EXPECT_EQ(clean.baselined, dirty.findings.size());
}

TEST(FlbAnalyze, BenchJsonSummarySchema) {
  Report report = AnalyzeFixtures({"deadlock_cycle.cc"});
  const std::string json = ReportToBenchJson(report);
  EXPECT_EQ(json.rfind("{", 0), 0u);
  EXPECT_NE(json.find("\"flb_analyze\""), std::string::npos);
  EXPECT_NE(json.find("flb.analyze.files_scanned"), std::string::npos);
  EXPECT_NE(json.find("flb.analyze.findings"), std::string::npos);
  EXPECT_NE(json.find("flb.analyze.lock_edges"), std::string::npos);
}

TEST(FlbAnalyze, SarifOutputStructure) {
  Report report = AnalyzeFixtures({"deadlock_cycle.cc", "src/net/upward.cc"});
  ASSERT_EQ(report.findings.size(), 2u);
  const std::string sarif = ReportToSarif(report);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif"), std::string::npos);
  EXPECT_NE(sarif.find("\"flb_analyze\""), std::string::npos);
  // All three rules are declared even when only some fire.
  for (const char* id : {"FLB007", "FLB008", "FLB009"}) {
    EXPECT_NE(sarif.find(id), std::string::npos) << id;
  }
  EXPECT_NE(sarif.find("partialFingerprints"), std::string::npos);
  EXPECT_NE(sarif.find("flbAnalyzeKey/v1"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 9"), std::string::npos);
}

TEST(FlbAnalyze, CacheRoundTripPreservesFindings) {
  const std::vector<std::string> names = {
      "deadlock_cycle.cc", "deadlock_callback.cc", "taint_helper.cc",
      "src/net/upward.cc", "clean.cc"};
  std::vector<FileFacts> facts;
  for (const std::string& name : names) {
    facts.push_back(ExtractFacts(name, ReadFileOrDie(FixturePath(name))));
  }

  const std::string text = SerializeCache(facts);
  std::map<std::string, FileFacts> parsed;
  std::string error;
  ASSERT_TRUE(ParseCache(text, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), facts.size());

  std::vector<FileFacts> round;
  for (const FileFacts& f : facts) {
    ASSERT_EQ(parsed.count(f.path), 1u) << f.path;
    EXPECT_EQ(parsed.at(f.path).content_hash, f.content_hash);
    round.push_back(parsed.at(f.path));
  }
  Report direct = AnalyzeFacts(facts, Options());
  Report cached = AnalyzeFacts(round, Options());
  ASSERT_EQ(cached.findings.size(), direct.findings.size());
  for (size_t i = 0; i < direct.findings.size(); ++i) {
    EXPECT_EQ(cached.findings[i].rule, direct.findings[i].rule);
    EXPECT_EQ(cached.findings[i].file, direct.findings[i].file);
    EXPECT_EQ(cached.findings[i].line, direct.findings[i].line);
    EXPECT_EQ(cached.findings[i].key, direct.findings[i].key);
  }
}

TEST(FlbAnalyze, WrongCacheVersionIsColdNotCorrupt) {
  std::vector<FileFacts> facts = {ExtractFacts(
      "clean.cc", ReadFileOrDie(FixturePath("clean.cc")))};
  std::string text = SerializeCache(facts);
  const size_t eol = text.find('\n');
  ASSERT_NE(eol, std::string::npos);
  text = "flb-analyze-cache 999" + text.substr(eol);
  std::map<std::string, FileFacts> parsed;
  std::string error;
  EXPECT_TRUE(ParseCache(text, &parsed, &error)) << error;
  EXPECT_TRUE(parsed.empty());
}

// The gate the CI lint job enforces: the real tree, analyzed with the
// checked-in exceptions and baseline, has zero new findings — and every
// baseline entry still matches a live finding (no stale debt).
TEST(FlbAnalyze, RealSourceTreeIsClean) {
  Options opts;
  std::string error;
  ASSERT_TRUE(LoadExceptionsFile(
      std::string(FLB_SOURCE_ROOT) + "/tools/flb_analyze/layering_exceptions.txt",
      &opts.layering_exceptions, &error))
      << error;
  ASSERT_TRUE(LoadBaselineFile(
      std::string(FLB_SOURCE_ROOT) + "/tools/flb_analyze/analyze_baseline.txt",
      &opts.baseline, &error))
      << error;

  Report report;
  ASSERT_TRUE(AnalyzeTree(std::string(FLB_SOURCE_ROOT) + "/src", opts, "",
                          &report, &error))
      << error;
  EXPECT_GT(report.files_scanned, 50u);
  EXPECT_GT(report.functions_analyzed, 200u);
  for (const Finding& f : report.findings) {
    ADD_FAILURE() << f.rule << " " << f.file << ":" << f.line << "  "
                  << f.message << "\n  key: " << f.key;
  }
  EXPECT_EQ(report.baselined, opts.baseline.size())
      << "stale baseline: an accepted key no longer matches any finding — "
         "remove it from tools/flb_analyze/analyze_baseline.txt";
  EXPECT_EQ(report.unjustified_allows, 0u);
}

}  // namespace
}  // namespace flb::analyze
