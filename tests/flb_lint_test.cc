// flb_lint rule coverage: each fixture under tests/lint_fixtures/ carries
// one deliberate violation per rule at a pinned line; clean.cc carries
// none; and the real src/ tree must scan clean (the acceptance invariant
// the CI lint job enforces, here pinned as a test).

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/flb_lint/lint.h"

namespace flb::lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(FLB_LINT_FIXTURE_DIR) + "/" + name;
}

// Lints one fixture file (as its own translation set) and returns the
// report.
Report LintFixture(const std::string& name) {
  Report report;
  std::string error;
  // LintTree wants a directory; single files go through the CLI-style
  // in-memory path instead.
  std::vector<FileInput> inputs;
  std::ifstream in(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream content;
  content << in.rdbuf();
  inputs.push_back({name, content.str()});
  report = LintFiles(inputs, Options());
  (void)error;
  return report;
}

struct Expected {
  std::string rule;
  int line;
};

void ExpectViolations(const std::string& fixture,
                      const std::vector<Expected>& expected) {
  const Report report = LintFixture(fixture);
  ASSERT_EQ(report.violations.size(), expected.size()) << fixture;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(report.violations[i].rule, expected[i].rule)
        << fixture << " violation " << i << ": "
        << report.violations[i].message;
    EXPECT_EQ(report.violations[i].line, expected[i].line)
        << fixture << " violation " << i << ": "
        << report.violations[i].message;
  }
}

TEST(FlbLintTest, RuleTableIsStable) {
  const auto& rules = Rules();
  ASSERT_EQ(rules.size(), 6u);
  EXPECT_STREQ(rules[0].id, "FLB001");
  EXPECT_STREQ(rules[0].name, "wall-clock");
  EXPECT_STREQ(rules[1].id, "FLB002");
  EXPECT_STREQ(rules[1].name, "entropy");
  EXPECT_STREQ(rules[2].id, "FLB003");
  EXPECT_STREQ(rules[2].name, "unordered-iter");
  EXPECT_STREQ(rules[3].id, "FLB004");
  EXPECT_STREQ(rules[3].name, "mutex-annotation");
  EXPECT_STREQ(rules[4].id, "FLB005");
  EXPECT_STREQ(rules[4].name, "discarded-status");
  EXPECT_STREQ(rules[5].id, "FLB006");
  EXPECT_STREQ(rules[5].name, "unbounded-retry");
}

TEST(FlbLintTest, WallClockFixture) {
  ExpectViolations("wall_clock_violation.cc", {{"FLB001", 10}});
}

TEST(FlbLintTest, EntropyFixture) {
  ExpectViolations("entropy_violation.cc", {{"FLB002", 8}});
}

TEST(FlbLintTest, UnorderedIterFixture) {
  ExpectViolations("unordered_iter_violation.cc", {{"FLB003", 15}});
}

TEST(FlbLintTest, MutexAnnotationFixture) {
  ExpectViolations("mutex_annotation_violation.cc",
                   {{"FLB004", 20}, {"FLB004", 32}});
}

TEST(FlbLintTest, DiscardedStatusFixture) {
  const std::string fixture = "discarded_status_violation.cc";
  ExpectViolations(fixture, {{"FLB005", 17}, {"FLB005", 18}});
  // The justified (void) discard on line 19 is counted, not reported.
  EXPECT_EQ(LintFixture(fixture).suppressed, 1u);
}

TEST(FlbLintTest, UnboundedRetryFixture) {
  // The two bounded loops in the fixture (attempt counter, deadline
  // predicate) must stay silent; only the budget-free spin reports.
  ExpectViolations("unbounded_retry_violation.cc", {{"FLB006", 19}});
}

TEST(FlbLintTest, CleanFixtureHasNoViolations) {
  const Report report = LintFixture("clean.cc");
  for (const Violation& v : report.violations) {
    ADD_FAILURE() << "clean.cc:" << v.line << " [" << v.rule << "] "
                  << v.message;
  }
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(FlbLintTest, AllowWithoutReasonDoesNotSuppress) {
  std::vector<FileInput> inputs = {
      {"unjustified.cc",
       "void Charged() {\n"
       "  int t = time(nullptr);  // flb-lint: allow(FLB001)\n"
       "  (void)t;\n"
       "}\n"}};
  const Report report = LintFiles(inputs, Options());
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].rule, "FLB001");
  EXPECT_EQ(report.violations[0].line, 2);
  EXPECT_EQ(report.unjustified_allows, 1u);
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(FlbLintTest, AllowNextLineSuppresses) {
  std::vector<FileInput> inputs = {
      {"next_line.cc",
       "void Charged() {\n"
       "  // flb-lint: allow-next-line(FLB001) calibration-only wall read\n"
       "  int t = time(nullptr);\n"
       "  (void)t;\n"
       "}\n"}};
  const Report report = LintFiles(inputs, Options());
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppressed, 1u);
}

TEST(FlbLintTest, AllowlistExemptsFile) {
  Options options;
  options.allowlist.push_back({"FLB002", "legacy/seed_me_later.cc"});
  std::vector<FileInput> inputs = {
      {"legacy/seed_me_later.cc", "int Draw() { return rand(); }\n"}};
  const Report report = LintFiles(inputs, options);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.allowlisted, 1u);
}

TEST(FlbLintTest, BannedNamesInsideCommentsAndStringsAreIgnored) {
  std::vector<FileInput> inputs = {
      {"prose.cc",
       "// system_clock and rand() discussed in prose only.\n"
       "const char* kDoc = \"uses std::random_device internally\";\n"}};
  const Report report = LintFiles(inputs, Options());
  EXPECT_TRUE(report.violations.empty());
}

TEST(FlbLintTest, BenchJsonSummarySchema) {
  const Report report = LintFixture("discarded_status_violation.cc");
  const std::string json = ReportToBenchJson(report);
  EXPECT_NE(json.find("\"bench\":\"flb_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\":\"flb.lint.files_scanned\""),
            std::string::npos);
  EXPECT_NE(json.find("\"metric\":\"flb.lint.violations\",\"value\":2"),
            std::string::npos);
  EXPECT_NE(
      json.find("\"metric\":\"flb.lint.violations_by_rule.FLB005\",\"value\":2"),
      std::string::npos);
  EXPECT_NE(json.find("\"unit\":\"count\""), std::string::npos);
}

// The acceptance invariant: the real source tree is lint-clean. Runs the
// same scan the CI lint job and scripts/run_lint.sh run.
TEST(FlbLintTest, RealSourceTreeIsClean) {
  Report report;
  std::string error;
  ASSERT_TRUE(
      LintTree(std::string(FLB_SOURCE_ROOT) + "/src", Options(), &report,
               &error))
      << error;
  EXPECT_GT(report.files_scanned, 50u);
  for (const Violation& v : report.violations) {
    ADD_FAILURE() << v.file << ":" << v.line << " [" << v.rule << "] "
                  << v.message;
  }
}

}  // namespace
}  // namespace flb::lint
