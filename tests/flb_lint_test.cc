// flb_lint rule coverage: each fixture under tests/lint_fixtures/ carries
// one deliberate violation per rule at a pinned line; clean.cc carries
// none; and the real src/ tree must scan clean (the acceptance invariant
// the CI lint job enforces, here pinned as a test).

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/flb_lint/lint.h"

namespace flb::lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(FLB_LINT_FIXTURE_DIR) + "/" + name;
}

// Lints one fixture file (as its own translation set) and returns the
// report.
Report LintFixture(const std::string& name) {
  Report report;
  std::string error;
  // LintTree wants a directory; single files go through the CLI-style
  // in-memory path instead.
  std::vector<FileInput> inputs;
  std::ifstream in(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream content;
  content << in.rdbuf();
  inputs.push_back({name, content.str()});
  report = LintFiles(inputs, Options());
  (void)error;
  return report;
}

struct Expected {
  std::string rule;
  int line;
};

void ExpectViolations(const std::string& fixture,
                      const std::vector<Expected>& expected) {
  const Report report = LintFixture(fixture);
  ASSERT_EQ(report.violations.size(), expected.size()) << fixture;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(report.violations[i].rule, expected[i].rule)
        << fixture << " violation " << i << ": "
        << report.violations[i].message;
    EXPECT_EQ(report.violations[i].line, expected[i].line)
        << fixture << " violation " << i << ": "
        << report.violations[i].message;
  }
}

TEST(FlbLintTest, RuleTableIsStable) {
  const auto& rules = Rules();
  ASSERT_EQ(rules.size(), 6u);
  EXPECT_STREQ(rules[0].id, "FLB001");
  EXPECT_STREQ(rules[0].name, "wall-clock");
  EXPECT_STREQ(rules[1].id, "FLB002");
  EXPECT_STREQ(rules[1].name, "entropy");
  EXPECT_STREQ(rules[2].id, "FLB003");
  EXPECT_STREQ(rules[2].name, "unordered-iter");
  EXPECT_STREQ(rules[3].id, "FLB004");
  EXPECT_STREQ(rules[3].name, "mutex-annotation");
  EXPECT_STREQ(rules[4].id, "FLB005");
  EXPECT_STREQ(rules[4].name, "discarded-status");
  EXPECT_STREQ(rules[5].id, "FLB006");
  EXPECT_STREQ(rules[5].name, "unbounded-retry");
}

TEST(FlbLintTest, WallClockFixture) {
  ExpectViolations("wall_clock_violation.cc", {{"FLB001", 10}});
}

TEST(FlbLintTest, EntropyFixture) {
  ExpectViolations("entropy_violation.cc", {{"FLB002", 8}});
}

TEST(FlbLintTest, UnorderedIterFixture) {
  ExpectViolations("unordered_iter_violation.cc", {{"FLB003", 15}});
}

TEST(FlbLintTest, MutexAnnotationFixture) {
  ExpectViolations("mutex_annotation_violation.cc",
                   {{"FLB004", 20}, {"FLB004", 32}});
}

TEST(FlbLintTest, DiscardedStatusFixture) {
  const std::string fixture = "discarded_status_violation.cc";
  ExpectViolations(fixture, {{"FLB005", 17}, {"FLB005", 18}});
  // The justified (void) discard on line 19 is counted, not reported.
  EXPECT_EQ(LintFixture(fixture).suppressed, 1u);
}

TEST(FlbLintTest, UnboundedRetryFixture) {
  // The two bounded loops in the fixture (attempt counter, deadline
  // predicate) must stay silent; only the budget-free spin reports.
  ExpectViolations("unbounded_retry_violation.cc", {{"FLB006", 19}});
}

TEST(FlbLintTest, TunerMeasurementFixture) {
  // The anti-pattern the AutoTuner is forbidden from: wall-clocked probe
  // measurement and entropy-seeded exploration.
  ExpectViolations(
      "tuner_measurement_violation.cc",
      {{"FLB002", 8}, {"FLB001", 14}, {"FLB001", 16}, {"FLB002", 22}});
}

// The tuner's measurement path must scan clean WITHOUT any allow pragmas:
// probes run in simulated time and the exploration pick comes from
// Rng::ForStream, so there is nothing to justify away. Zero suppressions
// is the point — a future allow() sneaking into the search loop fails
// here even though the tree-wide scan would still pass.
TEST(FlbLintTest, TunerMeasurementPathIsCleanWithoutAllowances) {
  std::vector<FileInput> inputs;
  for (const char* rel : {"/src/core/tuner.h", "/src/core/tuner.cc"}) {
    const std::string path = std::string(FLB_SOURCE_ROOT) + rel;
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing " << path;
    std::ostringstream content;
    content << in.rdbuf();
    inputs.push_back({path, content.str()});
  }
  const Report report = LintFiles(inputs, Options());
  for (const Violation& v : report.violations) {
    ADD_FAILURE() << v.file << ":" << v.line << " [" << v.rule << "] "
                  << v.message;
  }
  EXPECT_EQ(report.suppressed, 0u);
  EXPECT_EQ(report.unjustified_allows, 0u);
}

// Audit: every allow pragma in the real tree carries a reason. The linter
// only counts an unjustified allow when its violation actually fires, so a
// bare "// flb-lint: allow(FLBnnn)" sitting on a clean line would rot
// silently — this textual sweep catches it at introduction time.
TEST(FlbLintTest, EveryAllowInTreeIsJustified) {
  namespace fs = std::filesystem;
  const std::string root(FLB_SOURCE_ROOT);
  size_t pragmas = 0;
  for (const char* dir : {"/src", "/tools", "/bench"}) {
    for (const auto& entry :
         fs::recursive_directory_iterator(root + dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::string line;
      int lineno = 0;
      while (std::getline(in, line)) {
        ++lineno;
        const size_t at = line.find("flb-lint: allow");
        if (at == std::string::npos) continue;
        ++pragmas;
        const size_t open = line.find('(', at);
        const size_t close =
            open == std::string::npos ? std::string::npos
                                      : line.find(')', open);
        std::string reason =
            close == std::string::npos ? "" : line.substr(close + 1);
        const size_t first = reason.find_first_not_of(" \t");
        reason = first == std::string::npos ? "" : reason.substr(first);
        EXPECT_FALSE(reason.empty())
            << entry.path().string() << ":" << lineno
            << " bare allow without a reason: " << line;
      }
    }
  }
  // The sweep must actually see the tree's known justified allows;
  // a zero count means the walk silently missed the sources.
  EXPECT_GT(pragmas, 0u);
}

TEST(FlbLintTest, CleanFixtureHasNoViolations) {
  const Report report = LintFixture("clean.cc");
  for (const Violation& v : report.violations) {
    ADD_FAILURE() << "clean.cc:" << v.line << " [" << v.rule << "] "
                  << v.message;
  }
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(FlbLintTest, AllowWithoutReasonDoesNotSuppress) {
  std::vector<FileInput> inputs = {
      {"unjustified.cc",
       "void Charged() {\n"
       "  int t = time(nullptr);  // flb-lint: allow(FLB001)\n"
       "  (void)t;\n"
       "}\n"}};
  const Report report = LintFiles(inputs, Options());
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].rule, "FLB001");
  EXPECT_EQ(report.violations[0].line, 2);
  EXPECT_EQ(report.unjustified_allows, 1u);
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(FlbLintTest, AllowNextLineSuppresses) {
  std::vector<FileInput> inputs = {
      {"next_line.cc",
       "void Charged() {\n"
       "  // flb-lint: allow-next-line(FLB001) calibration-only wall read\n"
       "  int t = time(nullptr);\n"
       "  (void)t;\n"
       "}\n"}};
  const Report report = LintFiles(inputs, Options());
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppressed, 1u);
}

TEST(FlbLintTest, AllowlistExemptsFile) {
  Options options;
  options.allowlist.push_back({"FLB002", "legacy/seed_me_later.cc"});
  std::vector<FileInput> inputs = {
      {"legacy/seed_me_later.cc", "int Draw() { return rand(); }\n"}};
  const Report report = LintFiles(inputs, options);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.allowlisted, 1u);
}

TEST(FlbLintTest, BannedNamesInsideCommentsAndStringsAreIgnored) {
  std::vector<FileInput> inputs = {
      {"prose.cc",
       "// system_clock and rand() discussed in prose only.\n"
       "const char* kDoc = \"uses std::random_device internally\";\n"}};
  const Report report = LintFiles(inputs, Options());
  EXPECT_TRUE(report.violations.empty());
}

TEST(FlbLintTest, BenchJsonSummarySchema) {
  const Report report = LintFixture("discarded_status_violation.cc");
  const std::string json = ReportToBenchJson(report);
  EXPECT_NE(json.find("\"bench\":\"flb_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\":\"flb.lint.files_scanned\""),
            std::string::npos);
  EXPECT_NE(json.find("\"metric\":\"flb.lint.violations\",\"value\":2"),
            std::string::npos);
  EXPECT_NE(
      json.find("\"metric\":\"flb.lint.violations_by_rule.FLB005\",\"value\":2"),
      std::string::npos);
  EXPECT_NE(json.find("\"unit\":\"count\""), std::string::npos);
}

// The acceptance invariant: the real source tree is lint-clean. Runs the
// same scan the CI lint job and scripts/run_lint.sh run.
TEST(FlbLintTest, RealSourceTreeIsClean) {
  Report report;
  std::string error;
  ASSERT_TRUE(
      LintTree(std::string(FLB_SOURCE_ROOT) + "/src", Options(), &report,
               &error))
      << error;
  EXPECT_GT(report.files_scanned, 50u);
  for (const Violation& v : report.violations) {
    ADD_FAILURE() << v.file << ":" << v.line << " [" << v.rule << "] "
                  << v.message;
  }
}

}  // namespace
}  // namespace flb::lint
