// Tests for the GPU-HE layer: Algorithm 2 (parallel Montgomery) fidelity
// and the batched Table I API surface.

#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/crypto/montgomery.h"
#include "src/crypto/paillier.h"
#include "src/crypto/rsa.h"
#include "src/ghe/ghe_engine.h"
#include "src/ghe/parallel_montgomery.h"
#include "src/gpusim/device.h"

namespace flb::ghe {
namespace {

using crypto::MontgomeryContext;
using mpint::BigInt;

std::shared_ptr<gpusim::Device> MakeDevice(SimClock* clock = nullptr) {
  return std::make_shared<gpusim::Device>(gpusim::DeviceSpec::Rtx3090(), clock);
}

// ---------------------------------------------------------------------------
// Algorithm 2: parallel Montgomery multiplication
// ---------------------------------------------------------------------------

struct ParallelMontCase {
  int bits;
  int threads;
};

class ParallelMontTest : public ::testing::TestWithParam<ParallelMontCase> {};

TEST_P(ParallelMontTest, BitExactWithSequentialCios) {
  const auto [bits, threads] = GetParam();
  Rng rng(9000 + bits + threads);
  BigInt n = BigInt::Random(rng, bits);
  n = BigInt::FromWords([&] {
    auto w = n.ToFixedWords(bits / 32);
    w[0] |= 1;                      // odd
    w.back() |= 0x80000000u;        // full width -> exactly bits/32 limbs
    return w;
  }());
  auto ctx = MontgomeryContext::Create(n).value();
  const size_t s = ctx.num_limbs();
  ASSERT_EQ(s, static_cast<size_t>(bits / 32));

  for (int i = 0; i < 10; ++i) {
    BigInt a = BigInt::RandomBelow(rng, n);
    BigInt b = BigInt::RandomBelow(rng, n);
    const auto aw = a.ToFixedWords(s);
    const auto bw = b.ToFixedWords(s);
    std::vector<uint32_t> out(s);
    auto stats = ParallelMontMul(aw.data(), bw.data(), n.words().data(),
                                 ctx.n0_inv(), s, threads, out.data());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(BigInt::FromWords(out), ctx.MontMul(a, b))
        << "bits=" << bits << " threads=" << threads;
    EXPECT_GT(stats->limb_ops, 0u);
    if (threads > 1) {
      EXPECT_GT(stats->inter_thread_comms, 0u);
    } else {
      EXPECT_EQ(stats->inter_thread_comms, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParallelMontTest,
    ::testing::Values(ParallelMontCase{128, 1}, ParallelMontCase{128, 2},
                      ParallelMontCase{128, 4}, ParallelMontCase{256, 8},
                      ParallelMontCase{512, 4}, ParallelMontCase{512, 16},
                      ParallelMontCase{1024, 8}, ParallelMontCase{1024, 32},
                      ParallelMontCase{2048, 16}, ParallelMontCase{2048, 64}));

TEST(ParallelMont, RejectsNonDividingThreadCount) {
  std::vector<uint32_t> a(4, 1), b(4, 1), n(4, 1), out(4);
  n[0] = 0xFFFFFFFD;
  EXPECT_FALSE(
      ParallelMontMul(a.data(), b.data(), n.data(), 0, 4, 3, out.data()).ok());
  EXPECT_FALSE(
      ParallelMontMul(a.data(), b.data(), n.data(), 0, 0, 1, out.data()).ok());
}

TEST(ParallelMont, LargestValidThreadCount) {
  EXPECT_EQ(LargestValidThreadCount(64, 16), 16);
  EXPECT_EQ(LargestValidThreadCount(64, 15), 8);   // 15,14,... first divisor
  EXPECT_EQ(LargestValidThreadCount(7, 4), 1);     // prime limb count
  EXPECT_EQ(LargestValidThreadCount(12, 100), 12);
}

TEST(ParallelMont, MoreThreadsMoreCommunication) {
  Rng rng(1);
  BigInt n = BigInt::Random(rng, 1024);
  n = BigInt::FromWords([&] {
    auto w = n.ToFixedWords(32);
    w[0] |= 1;
    w.back() |= 0x80000000u;
    return w;
  }());
  auto ctx = MontgomeryContext::Create(n).value();
  BigInt a = BigInt::RandomBelow(rng, n);
  BigInt b = BigInt::RandomBelow(rng, n);
  const auto aw = a.ToFixedWords(32);
  const auto bw = b.ToFixedWords(32);
  std::vector<uint32_t> out(32);
  const auto s2 = ParallelMontMul(aw.data(), bw.data(), n.words().data(),
                                  ctx.n0_inv(), 32, 2, out.data())
                      .value();
  const auto s16 = ParallelMontMul(aw.data(), bw.data(), n.words().data(),
                                   ctx.n0_inv(), 32, 16, out.data())
                       .value();
  EXPECT_GT(s16.inter_thread_comms, s2.inter_thread_comms);
  EXPECT_EQ(s16.limb_ops, s2.limb_ops);  // same arithmetic, different split
}

// ---------------------------------------------------------------------------
// GheEngine: vector API
// ---------------------------------------------------------------------------

class GheEngineTest : public ::testing::Test {
 protected:
  GheEngineTest() : engine_(MakeDevice(&clock_)) {}

  std::vector<BigInt> RandomBatch(size_t count, int bits, Rng& rng) {
    std::vector<BigInt> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i) out.push_back(BigInt::Random(rng, bits));
    return out;
  }

  SimClock clock_;
  GheEngine engine_;
};

TEST_F(GheEngineTest, VectorAddSubRoundTrip) {
  Rng rng(10);
  auto a = RandomBatch(64, 256, rng);
  auto b = RandomBatch(64, 256, rng);
  auto sum = engine_.Add(a, b).value();
  auto diff = engine_.Sub(sum, b).value();
  ASSERT_EQ(diff.size(), a.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(diff[i], a[i]);
  EXPECT_GT(clock_.Elapsed(CostKind::kGpuKernel), 0.0);
  EXPECT_GT(clock_.Elapsed(CostKind::kPcieTransfer), 0.0);
}

TEST_F(GheEngineTest, VectorSubUnderflowIsError) {
  std::vector<BigInt> a{BigInt(1)}, b{BigInt(2)};
  EXPECT_TRUE(engine_.Sub(a, b).status().IsOutOfRange());
}

TEST_F(GheEngineTest, VectorMulDivMod) {
  Rng rng(11);
  auto a = RandomBatch(32, 192, rng);
  auto b = RandomBatch(32, 64, rng);
  for (auto& v : b) {
    if (v.IsZero()) v = BigInt(3);
  }
  auto prod = engine_.Mul(a, b).value();
  auto quot = engine_.Div(prod, b).value();
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(quot[i], a[i]);

  const BigInt n = BigInt::Random(rng, 100);
  auto rem = engine_.Mod(prod, n).value();
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(rem[i], prod[i] % n);
}

TEST_F(GheEngineTest, VectorDivByZeroError) {
  std::vector<BigInt> a{BigInt(6)}, b{BigInt()};
  EXPECT_TRUE(engine_.Div(a, b).status().IsArithmeticError());
  EXPECT_TRUE(engine_.Mod(a, BigInt()).status().IsArithmeticError());
}

TEST_F(GheEngineTest, MismatchedBatchSizesError) {
  std::vector<BigInt> a{BigInt(1), BigInt(2)}, b{BigInt(1)};
  EXPECT_TRUE(engine_.Add(a, b).status().IsInvalidArgument());
  EXPECT_TRUE(engine_.Mul(a, b).status().IsInvalidArgument());
  EXPECT_TRUE(engine_.ModMul(a, b, BigInt(17)).status().IsInvalidArgument());
}

TEST_F(GheEngineTest, EmptyBatchesAreNoOps) {
  std::vector<BigInt> empty;
  EXPECT_TRUE(engine_.Add(empty, empty)->empty());
  EXPECT_TRUE(engine_.ModPow(empty, empty, BigInt(17))->empty());
}

TEST_F(GheEngineTest, ModInvModMulModPowAgainstReference) {
  Rng rng(12);
  BigInt n = BigInt::Random(rng, 256);
  if (n.IsEven()) n = BigInt::Add(n, BigInt(1));
  auto a = RandomBatch(16, 200, rng);
  auto b = RandomBatch(16, 200, rng);
  auto e = RandomBatch(16, 32, rng);

  auto mm = engine_.ModMul(a, b, n).value();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(mm[i], BigInt::ModMul(a[i] % n, b[i] % n, n).value());
  }
  auto mp = engine_.ModPow(a, e, n).value();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(mp[i], BigInt::ModPow(a[i], e[i], n).value());
  }
  // ModInv over values coprime with an odd prime-ish modulus.
  const BigInt prime(1000003);
  std::vector<BigInt> units;
  for (int i = 2; i < 18; ++i) units.push_back(BigInt(i));
  auto inv = engine_.ModInv(units, prime).value();
  for (size_t i = 0; i < units.size(); ++i) {
    EXPECT_EQ(BigInt::ModMul(units[i], inv[i], prime).value(), BigInt(1));
  }
}

// ---------------------------------------------------------------------------
// GheEngine: batched Paillier / RSA
// ---------------------------------------------------------------------------

TEST_F(GheEngineTest, PaillierBatchRoundTripAndAggregate) {
  Rng rng(13);
  auto keys = crypto::PaillierKeyGen(256, rng).value();
  auto ctx = crypto::PaillierContext::Create(keys).value();

  std::vector<BigInt> ms;
  for (uint64_t i = 1; i <= 32; ++i) ms.push_back(BigInt(i * 1000));
  auto cs = engine_.PaillierEncrypt(ctx, ms, rng).value();
  ASSERT_EQ(cs.size(), ms.size());
  auto decrypted = engine_.PaillierDecrypt(ctx, cs).value();
  for (size_t i = 0; i < ms.size(); ++i) EXPECT_EQ(decrypted[i], ms[i]);

  // Pairwise homomorphic add: D(c[i] (*) c[i]) = 2*m[i].
  auto doubled = engine_.PaillierAdd(ctx, cs, cs).value();
  auto dec2 = engine_.PaillierDecrypt(ctx, doubled).value();
  for (size_t i = 0; i < ms.size(); ++i) {
    EXPECT_EQ(dec2[i], BigInt::Add(ms[i], ms[i]));
  }
}

TEST_F(GheEngineTest, PaillierBatchPropagatesElementErrors) {
  Rng rng(14);
  auto keys = crypto::PaillierKeyGen(128, rng).value();
  auto ctx = crypto::PaillierContext::Create(keys).value();
  std::vector<BigInt> ms{BigInt(1), keys.pub.n};  // second is out of range
  EXPECT_TRUE(engine_.PaillierEncrypt(ctx, ms, rng).status().IsOutOfRange());
}

TEST_F(GheEngineTest, RsaBatchRoundTripAndMul) {
  Rng rng(15);
  auto keys = crypto::RsaKeyGen(256, rng).value();
  auto ctx = crypto::RsaContext::Create(keys).value();
  std::vector<BigInt> ms;
  for (uint64_t i = 2; i <= 17; ++i) ms.push_back(BigInt(i));
  auto cs = engine_.RsaEncrypt(ctx, ms).value();
  auto dec = engine_.RsaDecrypt(ctx, cs).value();
  for (size_t i = 0; i < ms.size(); ++i) EXPECT_EQ(dec[i], ms[i]);
  auto prod = engine_.RsaMul(ctx, cs, cs).value();
  auto dec2 = engine_.RsaDecrypt(ctx, prod).value();
  for (size_t i = 0; i < ms.size(); ++i) {
    EXPECT_EQ(dec2[i], BigInt::Mul(ms[i], ms[i]) % keys.pub.n);
  }
}

// ---------------------------------------------------------------------------
// Timing model consistency
// ---------------------------------------------------------------------------

TEST_F(GheEngineTest, ModelMatchesRealLaunchGeometry) {
  Rng rng(16);
  auto keys = crypto::PaillierKeyGen(256, rng).value();
  auto ctx = crypto::PaillierContext::Create(keys).value();
  std::vector<BigInt> ms(8, BigInt(42));

  engine_.PaillierEncrypt(ctx, ms, rng).value();
  const auto real = engine_.last_launch();
  const auto modeled = engine_.ModelPaillierEncrypt(256, 8).value();
  EXPECT_EQ(modeled.block_threads, real.block_threads);
  EXPECT_EQ(modeled.waves, real.waves);
  EXPECT_DOUBLE_EQ(modeled.occupancy, real.occupancy);
  EXPECT_DOUBLE_EQ(modeled.sim_seconds, real.sim_seconds);
}

TEST_F(GheEngineTest, LargerKeysCostMore) {
  const double t1024 = engine_.ModelPaillierEncrypt(1024, 1024)->sim_seconds;
  const double t2048 = engine_.ModelPaillierEncrypt(2048, 1024)->sim_seconds;
  const double t4096 = engine_.ModelPaillierEncrypt(4096, 1024)->sim_seconds;
  // Cost grows superlinearly in key size (more mont-muls x bigger mont-muls).
  EXPECT_GT(t2048, 3 * t1024);
  EXPECT_GT(t4096, 3 * t2048);
}

TEST_F(GheEngineTest, DecryptCrtCheaperThanPlain) {
  const double crt = engine_.ModelPaillierDecrypt(1024, 256, true)->sim_seconds;
  const double plain =
      engine_.ModelPaillierDecrypt(1024, 256, false)->sim_seconds;
  EXPECT_LT(crt, plain);
}

TEST_F(GheEngineTest, BatchingAmortizesLaunchCost) {
  // Per-element cost should drop as the batch grows (launch latency and
  // partial-wave waste amortize out).
  const double t1 = engine_.ModelPaillierAdd(1024, 1)->sim_seconds;
  const double t4096 = engine_.ModelPaillierAdd(1024, 4096)->sim_seconds;
  EXPECT_LT(t4096 / 4096.0, t1);
}

TEST(GheEngineUtilization, FlboosterBeatsHafloStyleConfig) {
  // HAFLO-style engine: no branch combining, coarser thread split. The
  // FLBooster resource manager should achieve >= SM utilization and lower
  // kernel time on an identical workload (Fig. 6's claim).
  auto fl_device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), nullptr, /*branch_combining=*/true);
  auto haflo_device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), nullptr, /*branch_combining=*/false);
  GheConfig haflo_cfg;
  haflo_cfg.words_per_thread = 16;  // coarse split: fewer, heavier threads
  GheEngine fl(fl_device), haflo(haflo_device, haflo_cfg);

  const auto r_fl = fl.ModelPaillierEncrypt(2048, 100000).value();
  const auto r_haflo = haflo.ModelPaillierEncrypt(2048, 100000).value();
  EXPECT_GE(r_fl.sm_utilization, r_haflo.sm_utilization);
  EXPECT_LT(r_fl.sim_seconds, r_haflo.sim_seconds);
}


// ---------------------------------------------------------------------------
// Key generation on the device
// ---------------------------------------------------------------------------

TEST(GheKeyGen, PaillierKeysWorkAndChargeDeviceTime) {
  SimClock clock;
  auto device =
      std::make_shared<gpusim::Device>(gpusim::DeviceSpec::Rtx3090(), &clock);
  GheEngine engine(device);
  Rng rng(77);
  auto keys = engine.PaillierKeyGen(256, rng).value();
  EXPECT_EQ(keys.pub.key_bits, 256);
  EXPECT_GT(clock.Elapsed(CostKind::kGpuKernel), 0.0);
  // The generated keys are functional.
  auto ctx = crypto::PaillierContext::Create(keys).value();
  BigInt c = ctx.Encrypt(BigInt(31337), rng).value();
  EXPECT_EQ(ctx.Decrypt(c).value(), BigInt(31337));
}

TEST(GheKeyGen, RsaKeysWork) {
  auto device =
      std::make_shared<gpusim::Device>(gpusim::DeviceSpec::Rtx3090(), nullptr);
  GheEngine engine(device);
  Rng rng(78);
  auto keys = engine.RsaKeyGen(256, rng).value();
  auto ctx = crypto::RsaContext::Create(keys).value();
  EXPECT_EQ(ctx.Decrypt(ctx.Encrypt(BigInt(99)).value()).value(), BigInt(99));
  EXPECT_FALSE(engine.RsaKeyGen(63, rng).ok());
}

// ---------------------------------------------------------------------------
// Multi-stream chunked batches (copy/compute overlap)
// ---------------------------------------------------------------------------

TEST(GheStreams, SingleStreamConfigMatchesLegacyPathExactly) {
  // streams=1 must reproduce the original serialized H2D -> kernel -> D2H
  // accounting bit-for-bit: identical clock charges and launch telemetry.
  SimClock legacy_clock, streams_clock;
  GheConfig one_stream;
  one_stream.streams = 1;
  GheEngine legacy(MakeDevice(&legacy_clock));
  GheEngine configured(MakeDevice(&streams_clock), one_stream);

  legacy.ModelPaillierAdd(2048, 1 << 14).value();
  configured.ModelPaillierAdd(2048, 1 << 14).value();
  EXPECT_DOUBLE_EQ(streams_clock.Elapsed(CostKind::kGpuKernel),
                   legacy_clock.Elapsed(CostKind::kGpuKernel));
  EXPECT_DOUBLE_EQ(streams_clock.Elapsed(CostKind::kPcieTransfer),
                   legacy_clock.Elapsed(CostKind::kPcieTransfer));
  EXPECT_DOUBLE_EQ(configured.last_launch().sim_seconds,
                   legacy.last_launch().sim_seconds);
  EXPECT_FALSE(configured.last_batch().async);
  EXPECT_EQ(configured.last_batch().chunks, 1);
}

TEST(GheStreams, ChunkedBatchIsBitExactWithSynchronousPath) {
  // Real Paillier arithmetic through a forced 4-way chunked schedule must
  // produce ciphertexts identical to the synchronous path: the modeled
  // timeline never touches the math.
  Rng rng(21);
  auto keys = crypto::PaillierKeyGen(256, rng).value();
  auto ctx = crypto::PaillierContext::Create(keys).value();
  std::vector<BigInt> ms;
  for (uint64_t i = 1; i <= 64; ++i) ms.push_back(BigInt(i * 31));

  GheConfig chunked_cfg;
  chunked_cfg.streams = 4;
  chunked_cfg.adaptive_chunking = false;  // force chunking even when slower
  GheEngine sync_engine(MakeDevice());
  GheEngine chunked(MakeDevice(), chunked_cfg);

  // Same RNG seed on both engines so encryption randomness matches.
  Rng r_sync(22), r_chunked(22);
  const auto cs_sync = sync_engine.PaillierEncrypt(ctx, ms, r_sync).value();
  const auto cs_chunked = chunked.PaillierEncrypt(ctx, ms, r_chunked).value();
  ASSERT_EQ(cs_sync.size(), cs_chunked.size());
  for (size_t i = 0; i < cs_sync.size(); ++i) {
    EXPECT_EQ(cs_sync[i], cs_chunked[i]);
  }
  EXPECT_TRUE(chunked.last_batch().async);
  EXPECT_EQ(chunked.last_batch().chunks, 4);

  const auto sum_sync = sync_engine.PaillierAdd(ctx, cs_sync, cs_sync).value();
  const auto sum_chunked =
      chunked.PaillierAdd(ctx, cs_chunked, cs_chunked).value();
  for (size_t i = 0; i < sum_sync.size(); ++i) {
    EXPECT_EQ(sum_sync[i], sum_chunked[i]);
  }
  // And the results decrypt correctly.
  const auto dec = chunked.PaillierDecrypt(ctx, sum_chunked).value();
  for (size_t i = 0; i < ms.size(); ++i) {
    EXPECT_EQ(dec[i], BigInt::Add(ms[i], ms[i]));
  }
}

TEST(GheStreams, OverlapBeatsSerialOnTransferBoundBatches) {
  // Large hom-add batches are PCIe-bound: chunking across 4 streams hides
  // most of one transfer direction behind the kernel + the other direction.
  SimClock serial_clock, overlap_clock;
  GheConfig four;
  four.streams = 4;
  GheEngine serial(MakeDevice(&serial_clock));
  GheEngine overlapped(MakeDevice(&overlap_clock), four);

  serial.ModelPaillierAdd(2048, 1 << 16).value();
  overlapped.ModelPaillierAdd(2048, 1 << 16).value();

  EXPECT_TRUE(overlapped.last_batch().async);
  EXPECT_EQ(overlapped.last_batch().streams, 4);
  EXPECT_LT(overlap_clock.Now(), serial_clock.Now());
  EXPECT_GT(overlapped.last_batch().overlap_saved_seconds, 0.0);
  // The makespan can never beat the kernel busy time nor the sum of all
  // engine busy time.
  const auto& stats = overlapped.last_batch();
  EXPECT_GE(stats.makespan_seconds, stats.kernel_busy_seconds);
  EXPECT_LE(stats.makespan_seconds,
            stats.kernel_busy_seconds + stats.transfer_busy_seconds);
}

TEST(GheStreams, AdaptiveChunkingKeepsSmallBatchesSerial) {
  // Per-chunk PCIe latency and kernel launch latency make chunking a loss
  // for small batches; the adaptive engine must keep them on the serial
  // path — and therefore never price worse than a 1-stream engine.
  SimClock one_clock, four_clock;
  GheConfig four;
  four.streams = 4;
  GheEngine one(MakeDevice(&one_clock));
  GheEngine adaptive(MakeDevice(&four_clock), four);

  one.ModelPaillierEncrypt(1024, 64).value();
  adaptive.ModelPaillierEncrypt(1024, 64).value();
  EXPECT_FALSE(adaptive.last_batch().async);
  EXPECT_DOUBLE_EQ(four_clock.Now(), one_clock.Now());
}

TEST(GheStreams, SetStreamsRetargetsSubsequentBatches) {
  GheEngine engine(MakeDevice());
  engine.ModelPaillierAdd(2048, 1 << 16).value();
  EXPECT_FALSE(engine.last_batch().async);
  engine.set_streams(4);
  engine.ModelPaillierAdd(2048, 1 << 16).value();
  EXPECT_TRUE(engine.last_batch().async);
  const double overlapped = engine.last_batch().makespan_seconds;
  EXPECT_LT(overlapped, engine.last_batch().serial_seconds);
  engine.set_streams(1);
  engine.ModelPaillierAdd(2048, 1 << 16).value();
  EXPECT_FALSE(engine.last_batch().async);
}

TEST(GheKeyGen, LargerKeysChargeMoreSearchTime) {
  SimClock c1, c2;
  auto d1 =
      std::make_shared<gpusim::Device>(gpusim::DeviceSpec::Rtx3090(), &c1);
  auto d2 =
      std::make_shared<gpusim::Device>(gpusim::DeviceSpec::Rtx3090(), &c2);
  GheEngine e1(d1), e2(d2);
  Rng r1(79), r2(79);
  e1.PaillierKeyGen(128, r1).value();
  e2.PaillierKeyGen(512, r2).value();
  EXPECT_GT(c2.Elapsed(CostKind::kGpuKernel),
            c1.Elapsed(CostKind::kGpuKernel));
}

}  // namespace
}  // namespace flb::ghe
