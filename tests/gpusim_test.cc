// Tests for the simulated GPU device: resource manager (block table, memory
// pool, register/branch policy), occupancy, launch timing, utilization.

#include <gtest/gtest.h>

#include "src/gpusim/device.h"
#include "src/gpusim/device_spec.h"
#include "src/gpusim/resource_manager.h"

namespace flb::gpusim {
namespace {

DeviceSpec Spec() { return DeviceSpec::Rtx3090(); }

TEST(DeviceSpecTest, Rtx3090Constants) {
  const DeviceSpec s = Spec();
  EXPECT_EQ(s.num_sms, 82);
  EXPECT_EQ(s.MaxResidentThreads(), 82 * 1536);
  EXPECT_GT(s.core_clock_hz, 1e9);
  EXPECT_GT(s.pcie_bandwidth_bytes_per_sec, 1e9);
}

// ---------------------------------------------------------------------------
// ResourceManager: registers and branches
// ---------------------------------------------------------------------------

TEST(ResourceManagerTest, BranchCombiningKeepsRegisterDemand) {
  ResourceManager rm(Spec(), /*branch_combining=*/true);
  KernelDemand d;
  d.registers_per_thread = 40;
  d.divergent_branches = 3;
  EXPECT_EQ(rm.EffectiveRegisters(d), 40);
}

TEST(ResourceManagerTest, UnmanagedBranchesDoubleRegistersPerRegion) {
  ResourceManager rm(Spec(), /*branch_combining=*/false);
  KernelDemand d;
  d.registers_per_thread = 40;
  d.divergent_branches = 1;
  EXPECT_EQ(rm.EffectiveRegisters(d), 80);
  d.divergent_branches = 2;
  EXPECT_EQ(rm.EffectiveRegisters(d), 160);
  d.divergent_branches = 10;  // capped at the architectural max
  EXPECT_EQ(rm.EffectiveRegisters(d), Spec().max_registers_per_thread);
}

TEST(ResourceManagerTest, OccupancyThreadLimited) {
  ResourceManager rm(Spec());
  KernelDemand d;
  d.registers_per_thread = 32;  // 32*1536 = 49152 < 65536: threads bind
  EXPECT_DOUBLE_EQ(rm.OccupancyFor(512, d), 1.0);  // 3 blocks of 512 = 1536
  EXPECT_DOUBLE_EQ(rm.OccupancyFor(1024, d), 1024.0 / 1536.0);  // 1 block fits
}

TEST(ResourceManagerTest, OccupancyRegisterLimited) {
  ResourceManager rm(Spec());
  KernelDemand d;
  d.registers_per_thread = 80;  // 80*512 = 40960: one 512-block per SM
  EXPECT_DOUBLE_EQ(rm.OccupancyFor(512, d), 512.0 / 1536.0);
  auto plan = rm.PlanLaunch(100000, d).value();
  EXPECT_STREQ(plan.limiting_resource, "registers");
  EXPECT_LT(plan.occupancy, 1.0);
}

TEST(ResourceManagerTest, OccupancySharedMemLimited) {
  ResourceManager rm(Spec());
  KernelDemand d;
  d.registers_per_thread = 16;
  d.shared_mem_per_block = Spec().shared_mem_per_sm;  // one block per SM
  EXPECT_DOUBLE_EQ(rm.OccupancyFor(128, d), 128.0 / 1536.0);
}

TEST(ResourceManagerTest, PlanLaunchPicksHighOccupancyBlock) {
  ResourceManager rm(Spec());
  KernelDemand d;
  d.registers_per_thread = 32;
  auto plan = rm.PlanLaunch(1 << 20, d).value();
  EXPECT_GT(plan.block_threads, 0);
  EXPECT_DOUBLE_EQ(plan.occupancy, 1.0);
  EXPECT_EQ(plan.grid_blocks,
            (1 << 20) / plan.block_threads +
                ((1 << 20) % plan.block_threads != 0 ? 1 : 0));
}

TEST(ResourceManagerTest, PlanLaunchShrinksBlocksForTinyLaunches) {
  ResourceManager rm(Spec());
  KernelDemand d;
  auto plan = rm.PlanLaunch(40, d).value();
  EXPECT_EQ(plan.block_threads, rm.block_size_table().front());
  EXPECT_EQ(plan.grid_blocks, 1);
}

TEST(ResourceManagerTest, PlanLaunchRejectsZeroWork) {
  ResourceManager rm(Spec());
  EXPECT_FALSE(rm.PlanLaunch(0, KernelDemand{}).ok());
  EXPECT_FALSE(rm.PlanLaunch(-5, KernelDemand{}).ok());
}

// ---------------------------------------------------------------------------
// ResourceManager: memory table
// ---------------------------------------------------------------------------

TEST(MemoryPoolTest, AllocFreeReuseCycle) {
  ResourceManager rm(Spec());
  auto a1 = rm.Alloc(4096).value();
  auto a2 = rm.Alloc(4096).value();
  EXPECT_NE(a1, a2);
  EXPECT_EQ(rm.pool_stats().fresh_allocations, 2u);
  EXPECT_EQ(rm.pool_stats().bytes_in_use, 8192u);

  ASSERT_TRUE(rm.Free(a1).ok());
  // Same-size alloc is served from the table (address reuse).
  auto a3 = rm.Alloc(4096).value();
  EXPECT_EQ(a3, a1);
  EXPECT_EQ(rm.pool_stats().pool_hits, 1u);
  EXPECT_EQ(rm.pool_stats().fresh_allocations, 2u);
}

TEST(MemoryPoolTest, DifferentSizeClassMisses) {
  ResourceManager rm(Spec());
  auto a1 = rm.Alloc(4096).value();
  ASSERT_TRUE(rm.Free(a1).ok());
  auto a2 = rm.Alloc(8192).value();
  EXPECT_NE(a2, a1);
  EXPECT_EQ(rm.pool_stats().pool_hits, 0u);
}

TEST(MemoryPoolTest, ErrorPaths) {
  ResourceManager rm(Spec());
  EXPECT_FALSE(rm.Alloc(0).ok());
  EXPECT_TRUE(rm.Free(0xdead).IsNotFound());
  auto a = rm.Alloc(64).value();
  ASSERT_TRUE(rm.Free(a).ok());
  EXPECT_TRUE(rm.Free(a).IsFailedPrecondition());  // double free
}

TEST(MemoryPoolTest, ExhaustionAndTrim) {
  DeviceSpec tiny = Spec();
  tiny.global_mem_bytes = 1024;
  ResourceManager rm(tiny);
  auto a = rm.Alloc(1024).value();
  EXPECT_TRUE(rm.Alloc(1).status().IsResourceExhausted());
  ASSERT_TRUE(rm.Free(a).ok());
  // Freed-but-pooled memory still counts as reserved until trimmed.
  EXPECT_TRUE(rm.Alloc(512).status().IsResourceExhausted());
  rm.TrimPool();
  EXPECT_TRUE(rm.Alloc(512).ok());
}

TEST(MemoryPoolTest, PeakTracksHighWater) {
  ResourceManager rm(Spec());
  auto a = rm.Alloc(1000).value();
  auto b = rm.Alloc(2000).value();
  ASSERT_TRUE(rm.Free(a).ok());
  ASSERT_TRUE(rm.Free(b).ok());
  EXPECT_EQ(rm.pool_stats().peak_bytes, 3000u);
  EXPECT_EQ(rm.pool_stats().bytes_in_use, 0u);
}

// ---------------------------------------------------------------------------
// Device: launch timing and utilization
// ---------------------------------------------------------------------------

TEST(DeviceTest, LaunchChargesClockAndRunsBody) {
  SimClock clock;
  Device dev(Spec(), &clock);
  bool ran = false;
  KernelLaunch launch;
  launch.name = "test";
  launch.total_threads = 1 << 16;
  launch.ops_per_thread = 1000;
  launch.body = [&] { ran = true; };
  auto result = dev.Launch(launch).value();
  EXPECT_TRUE(ran);
  EXPECT_GT(result.sim_seconds, 0.0);
  EXPECT_DOUBLE_EQ(clock.Elapsed(CostKind::kGpuKernel), result.sim_seconds);
  EXPECT_EQ(dev.stats().kernels_launched, 1u);
}

TEST(DeviceTest, MoreWorkTakesLongerProportionally) {
  Device dev(Spec(), nullptr);
  KernelLaunch small, large;
  small.total_threads = large.total_threads = Spec().MaxResidentThreads();
  small.ops_per_thread = 1000;
  large.ops_per_thread = 10000;
  const double lat = Spec().kernel_launch_latency_sec;
  const double t_small = dev.Launch(small)->sim_seconds - lat;
  const double t_large = dev.Launch(large)->sim_seconds - lat;
  // 10x the per-thread ops -> 10x the compute time (net of launch latency).
  EXPECT_NEAR(t_large / t_small, 10.0, 0.01);
}

TEST(DeviceTest, WavesScaleWithOversubscription) {
  Device dev(Spec(), nullptr);
  KernelLaunch launch;
  launch.ops_per_thread = 1000;
  launch.total_threads = Spec().MaxResidentThreads();
  EXPECT_EQ(dev.Launch(launch)->waves, 1);
  launch.total_threads = 4 * Spec().MaxResidentThreads();
  EXPECT_EQ(dev.Launch(launch)->waves, 4);
}

TEST(DeviceTest, SmallLaunchHasLowUtilization) {
  Device dev(Spec(), nullptr);
  KernelLaunch launch;
  launch.ops_per_thread = 1000;
  launch.total_threads = 128;  // a sliver of an 125952-thread device
  auto r = dev.Launch(launch).value();
  EXPECT_LT(r.sm_utilization, 0.01);
  launch.total_threads = 10 * Spec().MaxResidentThreads();
  r = dev.Launch(launch).value();
  EXPECT_GT(r.sm_utilization, 0.9);
}

TEST(DeviceTest, RegisterPressureLowersOccupancyAndUtilization) {
  Device dev(Spec(), nullptr);
  KernelLaunch light, heavy;
  light.total_threads = heavy.total_threads = 10 * Spec().MaxResidentThreads();
  light.ops_per_thread = heavy.ops_per_thread = 1000;
  light.demand.registers_per_thread = 32;
  heavy.demand.registers_per_thread = 200;
  auto r_light = dev.Launch(light).value();
  auto r_heavy = dev.Launch(heavy).value();
  EXPECT_GT(r_light.occupancy, r_heavy.occupancy);
  EXPECT_GT(r_light.sm_utilization, r_heavy.sm_utilization);
}

TEST(DeviceTest, BranchDivergenceSlowsHaflosStyleDevice) {
  // Same kernel, branch combining on (FLBooster) vs off (HAFLO): the
  // unmanaged device pays both register doubling and serialization.
  KernelLaunch launch;
  launch.total_threads = 10 * Spec().MaxResidentThreads();
  launch.ops_per_thread = 5000;
  launch.demand.registers_per_thread = 48;
  launch.demand.divergent_branches = 2;

  Device combined(Spec(), nullptr, /*branch_combining=*/true);
  Device unmanaged(Spec(), nullptr, /*branch_combining=*/false);
  auto r_combined = combined.Launch(launch).value();
  auto r_unmanaged = unmanaged.Launch(launch).value();
  EXPECT_LT(r_combined.sim_seconds, r_unmanaged.sim_seconds);
  EXPECT_GE(r_combined.sm_utilization, r_unmanaged.sm_utilization);
}

TEST(DeviceTest, TransfersChargePcie) {
  SimClock clock;
  Device dev(Spec(), &clock);
  const double t1 = dev.CopyToDevice(16 << 20);
  const double t2 = dev.CopyFromDevice(16 << 20);
  EXPECT_GT(t1, 0.0);
  EXPECT_NEAR(clock.Elapsed(CostKind::kPcieTransfer), t1 + t2, 1e-12);
  EXPECT_EQ(dev.stats().bytes_h2d, 16u << 20);
  EXPECT_EQ(dev.stats().bytes_d2h, 16u << 20);
  // Doubling bytes roughly doubles time (latency aside).
  const double t4 = dev.CopyToDevice(32 << 20);
  EXPECT_GT(t4, 1.8 * (t1 - Spec().pcie_latency_sec));
}

TEST(DeviceTest, MeanUtilizationAggregates) {
  Device dev(Spec(), nullptr);
  KernelLaunch launch;
  launch.ops_per_thread = 1000;
  launch.total_threads = 10 * Spec().MaxResidentThreads();
  dev.Launch(launch).value();
  dev.Launch(launch).value();
  EXPECT_GT(dev.stats().MeanSmUtilization(), 0.9);
  dev.ResetStats();
  EXPECT_EQ(dev.stats().kernels_launched, 0u);
  EXPECT_DOUBLE_EQ(dev.stats().MeanSmUtilization(), 0.0);
}

TEST(DeviceTest, LaunchRejectsEmptyWork) {
  Device dev(Spec(), nullptr);
  KernelLaunch launch;
  launch.total_threads = 0;
  EXPECT_FALSE(dev.Launch(launch).ok());
}

// ---------------------------------------------------------------------------
// Streams and events: the async timeline
// ---------------------------------------------------------------------------

KernelLaunch SmallKernel(int64_t threads = 1 << 16,
                         uint64_t ops = 1000) {
  KernelLaunch launch;
  launch.name = "async";
  launch.total_threads = threads;
  launch.ops_per_thread = ops;
  return launch;
}

TEST(DeviceStreamTest, EstimateLaunchIsPureAndMatchesLaunch) {
  SimClock clock;
  Device dev(Spec(), &clock);
  const auto est = dev.EstimateLaunch(SmallKernel()).value();
  EXPECT_EQ(dev.stats().kernels_launched, 0u);
  EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
  const auto real = dev.Launch(SmallKernel()).value();
  EXPECT_DOUBLE_EQ(est.sim_seconds, real.sim_seconds);
  EXPECT_EQ(est.waves, real.waves);
  EXPECT_DOUBLE_EQ(est.occupancy, real.occupancy);
}

TEST(DeviceStreamTest, SingleStreamWindowMatchesSyncCharges) {
  // The same H2D -> kernel -> D2H sequence, synchronous vs enqueued on the
  // default stream: one stream means no overlap, so Synchronize must charge
  // the clock exactly what the serial path does.
  const size_t bytes = 8 << 20;
  SimClock sync_clock;
  Device sync_dev(Spec(), &sync_clock);
  sync_dev.CopyToDevice(bytes);
  sync_dev.Launch(SmallKernel()).value();
  sync_dev.CopyFromDevice(bytes / 2);

  SimClock async_clock;
  Device async_dev(Spec(), &async_clock);
  bool ran = false;
  KernelLaunch launch = SmallKernel();
  launch.body = [&] { ran = true; };
  async_dev.CopyToDeviceAsync(bytes, kDefaultStream).value();
  async_dev.LaunchAsync(launch, kDefaultStream).value();
  async_dev.CopyFromDeviceAsync(bytes / 2, kDefaultStream).value();
  const double makespan = async_dev.Synchronize();

  EXPECT_TRUE(ran);
  EXPECT_NEAR(makespan, sync_clock.Now(), 1e-15);
  EXPECT_NEAR(async_clock.Elapsed(CostKind::kGpuKernel),
              sync_clock.Elapsed(CostKind::kGpuKernel), 1e-15);
  EXPECT_NEAR(async_clock.Elapsed(CostKind::kPcieTransfer),
              sync_clock.Elapsed(CostKind::kPcieTransfer), 1e-15);
}

TEST(DeviceStreamTest, TwoStreamsOverlapCopiesWithCompute) {
  // Two independent chunks on two streams: stream 1's H2D runs during
  // stream 0's kernel, so the window is shorter than the serial sum.
  Device dev(Spec(), nullptr);
  const StreamId s1 = dev.CreateStream();
  const size_t bytes = 32 << 20;

  double serial = 0.0;
  for (const StreamId s : {kDefaultStream, s1}) {
    dev.CopyToDeviceAsync(bytes, s).value();
    const auto r = dev.LaunchAsync(SmallKernel(), s).value();
    dev.CopyFromDeviceAsync(bytes, s).value();
    serial += 2 * dev.TransferSeconds(bytes) + r.sim_seconds;
  }
  const double makespan = dev.Synchronize();
  EXPECT_LT(makespan, serial);
  EXPECT_GT(dev.stats().overlap_saved_seconds, 0.0);
  EXPECT_EQ(dev.stats().streams_created, 1u);
  EXPECT_EQ(dev.stats().synchronizations, 1u);
}

TEST(DeviceStreamTest, KernelsSerializeAcrossStreams) {
  // One compute engine: a kernel on stream 1 cannot start until stream 0's
  // kernel finishes, even with no data dependency.
  Device dev(Spec(), nullptr);
  const StreamId s1 = dev.CreateStream();
  const auto r0 = dev.LaunchAsync(SmallKernel(), kDefaultStream).value();
  const auto r1 = dev.LaunchAsync(SmallKernel(), s1).value();
  EXPECT_DOUBLE_EQ(r1.start_seconds, r0.end_seconds);
}

TEST(DeviceStreamTest, SameDirectionCopiesSerializeOppositeOverlap) {
  // Full-duplex PCIe: each direction has one DMA engine. Same-direction
  // copies on different streams queue; opposite directions run concurrently.
  Device dev(Spec(), nullptr);
  const StreamId s1 = dev.CreateStream();
  const StreamId s2 = dev.CreateStream();
  const size_t bytes = 16 << 20;
  const auto h2d_a = dev.CopyToDeviceAsync(bytes, kDefaultStream).value();
  const auto h2d_b = dev.CopyToDeviceAsync(bytes, s1).value();
  const auto d2h = dev.CopyFromDeviceAsync(bytes, s2).value();
  EXPECT_DOUBLE_EQ(h2d_b.start_seconds, h2d_a.end_seconds);
  EXPECT_DOUBLE_EQ(d2h.start_seconds, 0.0);
}

TEST(DeviceStreamTest, HalfDuplexLinkSerializesBothDirections) {
  Device dev(DeviceSpec::JetsonClass(), nullptr);
  ASSERT_FALSE(dev.spec().pcie_full_duplex);
  const StreamId s1 = dev.CreateStream();
  const size_t bytes = 16 << 20;
  const auto h2d = dev.CopyToDeviceAsync(bytes, kDefaultStream).value();
  const auto d2h = dev.CopyFromDeviceAsync(bytes, s1).value();
  EXPECT_DOUBLE_EQ(d2h.start_seconds, h2d.end_seconds);
}

TEST(DeviceStreamTest, EventsOrderCrossStreamWork) {
  // cudaStreamWaitEvent semantics: stream 1 must not start its kernel until
  // stream 0 reaches the recorded event.
  Device dev(Spec(), nullptr);
  const StreamId s1 = dev.CreateStream();
  const size_t bytes = 64 << 20;
  dev.CopyToDeviceAsync(bytes, kDefaultStream).value();
  const EventId staged = dev.RecordEvent(kDefaultStream).value();
  const double staged_at =
      dev.StreamReadySeconds(kDefaultStream).value();
  ASSERT_TRUE(dev.WaitEvent(s1, staged).ok());
  const auto r = dev.LaunchAsync(SmallKernel(), s1).value();
  EXPECT_GE(r.start_seconds, staged_at);
  EXPECT_EQ(dev.stats().events_recorded, 1u);
}

TEST(DeviceStreamTest, SynchronizeChargesExposedTransferOnly) {
  // Charged PCIe time is makespan - kernel busy: copies hidden behind
  // kernels cost nothing, copies the overlap failed to hide cost in full.
  SimClock clock;
  Device dev(Spec(), &clock);
  const StreamId s1 = dev.CreateStream();
  double kernel_busy = 0.0;
  const size_t bytes = 32 << 20;
  for (const StreamId s : {kDefaultStream, s1}) {
    dev.CopyToDeviceAsync(bytes, s).value();
    kernel_busy += dev.LaunchAsync(SmallKernel(), s).value().sim_seconds;
    dev.CopyFromDeviceAsync(bytes, s).value();
  }
  const double makespan = dev.Synchronize();
  EXPECT_NEAR(clock.Elapsed(CostKind::kGpuKernel), kernel_busy, 1e-15);
  EXPECT_NEAR(clock.Elapsed(CostKind::kPcieTransfer),
              makespan - kernel_busy, 1e-12);
  EXPECT_NEAR(clock.Now(), makespan, 1e-12);
}

TEST(DeviceStreamTest, SynchronizeResetsTheWindow) {
  SimClock clock;
  Device dev(Spec(), &clock);
  const StreamId s1 = dev.CreateStream();
  dev.CopyToDeviceAsync(1 << 20, s1).value();
  EXPECT_GT(dev.Synchronize(), 0.0);
  const double charged = clock.Now();
  // Fresh window: timelines back at the origin, empty Synchronize is free.
  EXPECT_DOUBLE_EQ(dev.StreamReadySeconds(s1).value(), 0.0);
  EXPECT_DOUBLE_EQ(dev.Synchronize(), 0.0);
  EXPECT_DOUBLE_EQ(clock.Now(), charged);
}

TEST(DeviceStreamTest, RejectsUnknownStreamsAndEvents) {
  Device dev(Spec(), nullptr);
  EXPECT_FALSE(dev.LaunchAsync(SmallKernel(), 7).ok());
  EXPECT_FALSE(dev.CopyToDeviceAsync(1024, -1).ok());
  EXPECT_FALSE(dev.RecordEvent(3).ok());
  EXPECT_FALSE(dev.WaitEvent(kDefaultStream, 0).ok());  // no events yet
}

}  // namespace
}  // namespace flb::gpusim
