// Tests for the HeService facade: packed-sum and fixed-point paths, real vs
// modeled execution agreement, engine traits, and cipher-space compression.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/core/he_service.h"
#include "src/core/transport.h"
#include "src/gpusim/device.h"

namespace flb::core {
namespace {

std::shared_ptr<gpusim::Device> MakeDevice(SimClock* clock,
                                           bool branch_combining = true) {
  return std::make_shared<gpusim::Device>(gpusim::DeviceSpec::Rtx3090(), clock,
                                          branch_combining);
}

HeServiceOptions SmallRealOptions(EngineKind engine) {
  HeServiceOptions opts;
  opts.engine = engine;
  opts.key_bits = 256;  // small keys: tests run real crypto
  opts.r_bits = 14;     // slot = 16 bits at 4 participants
  opts.participants = 4;
  opts.modeled = false;
  opts.frac_bits = 16;
  return opts;
}

class HeServiceEngineTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override {
    device_ = MakeDevice(&clock_, TraitsFor(GetParam()).branch_combining);
    auto service =
        HeService::Create(SmallRealOptions(GetParam()), &clock_, device_);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    he_ = std::move(service).value();
  }

  SimClock clock_;
  std::shared_ptr<gpusim::Device> device_;
  std::unique_ptr<HeService> he_;
};

TEST_P(HeServiceEngineTest, PackedSumRoundTrip) {
  std::vector<double> values{0.5, -0.25, 0.125, -1.0, 1.0, 0.0, 0.75};
  auto enc = he_->EncryptValues(values).value();
  EXPECT_EQ(enc.count, values.size());
  auto dec = he_->DecryptValues(enc).value();
  ASSERT_EQ(dec.size(), values.size());
  const double tol = he_->quantizer().MaxAbsoluteError();
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(dec[i], values[i], tol);
  }
}

TEST_P(HeServiceEngineTest, PackedAggregationAcrossParties) {
  std::vector<double> a{0.1, -0.2, 0.3}, b{0.4, 0.5, -0.6}, c{-0.7, 0.1, 0.2};
  auto ea = he_->EncryptValues(a).value();
  auto eb = he_->EncryptValues(b).value();
  auto sum = he_->AddCipher(ea, eb).value();
  EXPECT_EQ(sum.contributors, 2);
  sum = he_->AddPlainValues(sum, c).value();
  EXPECT_EQ(sum.contributors, 3);
  auto dec = he_->DecryptValues(sum).value();
  const double tol = 3 * he_->quantizer().MaxAbsoluteError();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(dec[i], a[i] + b[i] + c[i], tol);
  }
}

TEST_P(HeServiceEngineTest, ContributorHeadroomEnforced) {
  std::vector<double> v{0.1};
  auto e1 = he_->EncryptValues(v).value();
  auto e2 = he_->EncryptValues(v).value();
  auto s2 = he_->AddCipher(e1, e2).value();
  auto s4 = he_->AddCipher(s2, s2).value();  // 4 contributors: at the limit
  EXPECT_EQ(s4.contributors, 4);
  EXPECT_TRUE(he_->AddCipher(s4, e1).status().IsOutOfRange());
  EXPECT_TRUE(he_->AddPlainValues(s4, v).status().IsOutOfRange());
}

TEST_P(HeServiceEngineTest, FixedPointScalarMulAndAdd) {
  std::vector<double> values{0.5, -0.75, 1.5};
  auto enc = he_->EncryptFixedPoint(values).value();
  auto scaled = he_->ScalarMulFixedPoint(enc, {2.0, -1.0, 0.5}).value();
  EXPECT_EQ(scaled.scale_muls, 1);
  auto dec = he_->DecryptFixedPoint(scaled).value();
  EXPECT_NEAR(dec[0], 1.0, 1e-3);
  EXPECT_NEAR(dec[1], 0.75, 1e-3);
  EXPECT_NEAR(dec[2], 0.75, 1e-3);

  auto doubled = he_->AddFixedPoint(scaled, scaled).value();
  auto dec2 = he_->DecryptFixedPoint(doubled).value();
  EXPECT_NEAR(dec2[0], 2.0, 1e-3);
}

TEST_P(HeServiceEngineTest, WeightedAndSelectiveSums) {
  std::vector<double> values{1.0, -0.5, 0.25, 2.0};
  auto enc = he_->EncryptFixedPoint(values).value();

  std::vector<std::vector<HeService::WeightedTerm>> groups{
      {{0, 2.0}, {1, 4.0}},          // 2*1 + 4*(-0.5) = 0
      {{2, 1.0}, {3, 0.5}, {0, 1.0}},  // 0.25 + 1 + 1 = 2.25
      {}};                           // empty -> 0
  auto sums = he_->WeightedSums(enc, groups).value();
  auto dec = he_->DecryptFixedPoint(sums).value();
  ASSERT_EQ(dec.size(), 3u);
  EXPECT_NEAR(dec[0], 0.0, 1e-3);
  EXPECT_NEAR(dec[1], 2.25, 1e-3);
  EXPECT_NEAR(dec[2], 0.0, 1e-3);

  std::vector<std::vector<uint32_t>> sel{{0, 3}, {1, 2}};
  auto ssums = he_->SelectiveSums(enc, sel).value();
  auto sdec = he_->DecryptFixedPoint(ssums).value();
  EXPECT_NEAR(sdec[0], 3.0, 1e-3);
  EXPECT_NEAR(sdec[1], -0.25, 1e-3);
}

TEST_P(HeServiceEngineTest, ErrorPaths) {
  std::vector<double> v{0.5};
  EXPECT_TRUE(he_->EncryptValues({}).status().IsInvalidArgument());
  auto packed = he_->EncryptValues(v).value();
  auto fixed = he_->EncryptFixedPoint(v).value();
  // Layout confusion rejected.
  EXPECT_FALSE(he_->AddCipher(packed, fixed).ok());
  EXPECT_FALSE(he_->DecryptValues(fixed).ok());
  EXPECT_FALSE(he_->DecryptFixedPoint(packed).ok());
  EXPECT_FALSE(he_->ScalarMulFixedPoint(fixed, {1.0, 2.0}).ok());
  std::vector<std::vector<HeService::WeightedTerm>> bad{{{5, 1.0}}};
  EXPECT_TRUE(he_->WeightedSums(fixed, bad).status().IsOutOfRange());
}

INSTANTIATE_TEST_SUITE_P(Engines, HeServiceEngineTest,
                         ::testing::Values(EngineKind::kFate,
                                           EngineKind::kHaflo,
                                           EngineKind::kFlBooster,
                                           EngineKind::kFlBoosterNoGhe,
                                           EngineKind::kFlBoosterNoBc));

TEST(HeServiceTest, PackSlotsReflectBcTrait) {
  SimClock clock;
  auto device = MakeDevice(&clock);
  auto bc = HeService::Create(SmallRealOptions(EngineKind::kFlBooster), &clock,
                              device)
                .value();
  auto no_bc = HeService::Create(SmallRealOptions(EngineKind::kHaflo), &clock,
                                 device)
                   .value();
  EXPECT_GT(bc->pack_slots(), 1);
  EXPECT_EQ(no_bc->pack_slots(), 1);
  // Same logical vector, fewer ciphertexts and fewer wire bytes under BC.
  std::vector<double> values(40, 0.25);
  auto enc_bc = bc->EncryptValues(values).value();
  auto enc_plain = no_bc->EncryptValues(values).value();
  EXPECT_LT(enc_bc.num_ciphertexts(), enc_plain.num_ciphertexts());
  EXPECT_LT(bc->WireBytes(enc_bc), no_bc->WireBytes(enc_plain));
}

TEST(HeServiceTest, CipherCompressionRoundTrip) {
  SimClock clock;
  auto device = MakeDevice(&clock);
  HeServiceOptions opts = SmallRealOptions(EngineKind::kFlBooster);
  opts.fp_compress_slot_bits = 40;  // 256-bit key -> 6 slots
  auto he = HeService::Create(opts, &clock, device).value();

  std::vector<double> values{0.5, -1.25, 2.0, -0.125, 0.75, 3.5, -2.25, 0.0};
  auto enc = he->EncryptFixedPoint(values).value();
  auto packed = he->CompressForTransmission(enc).value();
  EXPECT_LT(packed.num_ciphertexts(), enc.num_ciphertexts());
  EXPECT_GT(packed.slots_per_cipher, 1);
  auto dec = he->DecryptFixedPoint(packed).value();
  ASSERT_EQ(dec.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(dec[i], values[i], 1e-3) << i;
  }
}

TEST(HeServiceTest, CipherCompressionIsNoOpWithoutBc) {
  SimClock clock;
  auto device = MakeDevice(&clock);
  auto he = HeService::Create(SmallRealOptions(EngineKind::kFlBoosterNoBc),
                              &clock, device)
                .value();
  std::vector<double> values{0.5, -1.25, 2.0};
  auto enc = he->EncryptFixedPoint(values).value();
  auto same = he->CompressForTransmission(enc).value();
  EXPECT_EQ(same.num_ciphertexts(), enc.num_ciphertexts());
  EXPECT_EQ(same.slots_per_cipher, 1);
}

TEST(HeServiceTest, ModeledMatchesRealValues) {
  // The modeled path must produce numerically identical decode results to
  // the real path (quantization is the only loss in both).
  SimClock real_clock, model_clock;
  auto real_dev = MakeDevice(&real_clock);
  auto model_dev = MakeDevice(&model_clock);
  HeServiceOptions opts = SmallRealOptions(EngineKind::kFlBooster);
  auto real = HeService::Create(opts, &real_clock, real_dev).value();
  opts.modeled = true;
  auto modeled = HeService::Create(opts, &model_clock, model_dev).value();

  std::vector<double> a{0.5, -0.25, 0.75}, b{-0.5, 0.5, 0.125};
  auto ra = real->EncryptValues(a).value();
  auto rb = real->EncryptValues(b).value();
  auto rsum = real->DecryptValues(real->AddCipher(ra, rb).value()).value();
  auto ma = modeled->EncryptValues(a).value();
  auto mb = modeled->EncryptValues(b).value();
  auto msum =
      modeled->DecryptValues(modeled->AddCipher(ma, mb).value()).value();
  ASSERT_EQ(rsum.size(), msum.size());
  for (size_t i = 0; i < rsum.size(); ++i) {
    EXPECT_DOUBLE_EQ(rsum[i], msum[i]) << i;
  }
  // And the modeled run charges comparable HE time (same op counts and the
  // same kernel model — identical, in fact, for the GPU engine).
  EXPECT_NEAR(model_clock.HeSeconds(), real_clock.HeSeconds(),
              0.2 * real_clock.HeSeconds() + 1e-9);
}

TEST(HeServiceTest, ModeledFixedPointMatchesReal) {
  SimClock c1, c2;
  auto d1 = MakeDevice(&c1);
  auto d2 = MakeDevice(&c2);
  HeServiceOptions opts = SmallRealOptions(EngineKind::kFlBooster);
  auto real = HeService::Create(opts, &c1, d1).value();
  opts.modeled = true;
  auto modeled = HeService::Create(opts, &c2, d2).value();

  std::vector<double> v{0.5, -0.75, 1.25, 2.0};
  std::vector<std::vector<HeService::WeightedTerm>> groups{
      {{0, 1.5}, {2, -2.0}}, {{1, 3.0}, {3, 0.25}}};
  auto rdec =
      real->DecryptFixedPoint(
              real->WeightedSums(real->EncryptFixedPoint(v).value(), groups)
                  .value())
          .value();
  auto mdec = modeled
                  ->DecryptFixedPoint(modeled
                                          ->WeightedSums(
                                              modeled->EncryptFixedPoint(v)
                                                  .value(),
                                              groups)
                                          .value())
                  .value();
  ASSERT_EQ(rdec.size(), mdec.size());
  for (size_t i = 0; i < rdec.size(); ++i) {
    EXPECT_NEAR(rdec[i], mdec[i], 1e-9) << i;
  }
}

TEST(HeServiceTest, OpCountsAndThroughputInputs) {
  SimClock clock;
  auto device = MakeDevice(&clock);
  auto he = HeService::Create(SmallRealOptions(EngineKind::kFlBooster), &clock,
                              device)
                .value();
  std::vector<double> values(30, 0.5);
  auto enc = he->EncryptValues(values).value();
  he->DecryptValues(enc).value();
  EXPECT_EQ(he->op_counts().values_encrypted, 30u);
  EXPECT_EQ(he->op_counts().values_decrypted, 30u);
  EXPECT_EQ(he->op_counts().encrypts, enc.num_ciphertexts());
  EXPECT_GT(clock.HeSeconds(), 0.0);
  he->ResetOpCounts();
  EXPECT_EQ(he->op_counts().encrypts, 0u);
}

TEST(HeServiceTest, CreateValidation) {
  SimClock clock;
  HeServiceOptions opts = SmallRealOptions(EngineKind::kFlBooster);
  // GPU engine without a device.
  EXPECT_FALSE(HeService::Create(opts, &clock, nullptr).ok());
  // Bad key size.
  opts.key_bits = 100;
  EXPECT_FALSE(HeService::Create(opts, &clock, MakeDevice(&clock)).ok());
}

TEST(HeServiceStreams, TraitsCarryStreamCounts) {
  EXPECT_EQ(TraitsFor(EngineKind::kFlBooster).gpu_streams, 4);
  EXPECT_EQ(TraitsFor(EngineKind::kFlBoosterNoBc).gpu_streams, 4);
  EXPECT_EQ(TraitsFor(EngineKind::kFate).gpu_streams, 1);
  EXPECT_EQ(TraitsFor(EngineKind::kHaflo).gpu_streams, 1);
  EXPECT_EQ(TraitsFor(EngineKind::kFlBoosterNoGhe).gpu_streams, 1);
}

TEST(HeServiceStreams, OptionsOverrideEngineDefault) {
  SimClock clock;
  auto device = MakeDevice(&clock);
  HeServiceOptions opts = SmallRealOptions(EngineKind::kFlBooster);
  auto by_trait = HeService::Create(opts, &clock, device).value();
  ASSERT_NE(by_trait->ghe_engine(), nullptr);
  EXPECT_EQ(by_trait->ghe_engine()->config().streams, 4);

  opts.gpu_streams = 1;
  auto forced_serial = HeService::Create(opts, &clock, device).value();
  ASSERT_NE(forced_serial->ghe_engine(), nullptr);
  EXPECT_EQ(forced_serial->ghe_engine()->config().streams, 1);

  // CPU engines have no GPU HE engine to configure.
  auto cpu = HeService::Create(SmallRealOptions(EngineKind::kFate), &clock,
                               MakeDevice(&clock))
                 .value();
  EXPECT_EQ(cpu->ghe_engine(), nullptr);
}

TEST(HeServiceStreams, MultiStreamNeverChargesMoreAndStaysBitExact) {
  // The adaptive engine only chunks when the modeled timeline is strictly
  // faster, so the 4-stream service can never charge more HE time than the
  // forced-serial one — and the ciphertext math is identical either way.
  SimClock serial_clock, async_clock;
  auto serial_dev = MakeDevice(&serial_clock);
  auto async_dev = MakeDevice(&async_clock);
  HeServiceOptions opts = SmallRealOptions(EngineKind::kFlBooster);
  opts.gpu_streams = 1;
  auto serial = HeService::Create(opts, &serial_clock, serial_dev).value();
  opts.gpu_streams = 4;
  auto async = HeService::Create(opts, &async_clock, async_dev).value();

  std::vector<double> a(512), b(512);
  for (int i = 0; i < 512; ++i) {
    a[i] = 0.001 * i - 0.2;
    b[i] = 0.25 - 0.0005 * i;
  }
  auto sdec =
      serial
          ->DecryptValues(serial
                              ->AddCipher(serial->EncryptValues(a).value(),
                                          serial->EncryptValues(b).value())
                              .value())
          .value();
  auto adec =
      async
          ->DecryptValues(async
                              ->AddCipher(async->EncryptValues(a).value(),
                                          async->EncryptValues(b).value())
                              .value())
          .value();
  ASSERT_EQ(sdec.size(), adec.size());
  for (size_t i = 0; i < sdec.size(); ++i) {
    EXPECT_DOUBLE_EQ(sdec[i], adec[i]) << i;
  }
  EXPECT_LE(async_clock.HeSeconds(), serial_clock.HeSeconds() + 1e-12);
}

TEST(HeServiceTest, TransportRoundTrip) {
  SimClock clock;
  net::Network network(net::LinkSpec::GigabitEthernet(), &clock);
  auto device = MakeDevice(&clock);
  auto he = HeService::Create(SmallRealOptions(EngineKind::kFlBooster), &clock,
                              device)
                .value();
  std::vector<double> values{0.5, -0.25, 0.75, 0.125};
  auto enc = he->EncryptValues(values).value();
  ASSERT_TRUE(SendEncVec(&network, *he, "alice", "bob", "grad", enc).ok());
  // Wire bytes reflect the real ciphertext footprint.
  EXPECT_GE(network.stats().bytes, he->WireBytes(enc));
  auto received = RecvEncVec(&network, "bob", "grad").value();
  EXPECT_EQ(received.count, enc.count);
  EXPECT_EQ(received.contributors, enc.contributors);
  auto dec = he->DecryptValues(received).value();
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(dec[i], values[i], he->quantizer().MaxAbsoluteError());
  }
}

}  // namespace
}  // namespace flb::core
