// Tests for the FedAvg Homo NN trainer (extension model).

#include <gtest/gtest.h>

#include <memory>

#include "src/core/he_service.h"
#include "src/core/platform.h"
#include "src/fl/homo_nn.h"
#include "src/fl/partition.h"

namespace flb::fl {
namespace {

struct Rig {
  SimClock clock;
  std::shared_ptr<gpusim::Device> device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), &clock);
  net::Network network{net::LinkSpec::GigabitEthernet(), &clock};
  std::unique_ptr<core::HeService> he;

  Rig(int parties, bool modeled) {
    core::HeServiceOptions opts;
    opts.engine = core::EngineKind::kFlBooster;
    opts.key_bits = 256;
    opts.r_bits = 14;
    opts.participants = parties;
    opts.modeled = modeled;
    he = core::HeService::Create(opts, &clock, device).value();
  }

  FlSession session() { return FlSession{he.get(), &network, &clock}; }
};

TEST(HomoNnTest, FedAvgReducesLossWithRealHe) {
  Rig rig(3, /*modeled=*/false);
  auto ds = GenerateDataset(DatasetSpec{DatasetKind::kSynthetic, 150, 12, 12, 4})
                .value();
  auto shards = HorizontalSplit(ds, 3).value();
  TrainConfig cfg;
  cfg.max_epochs = 10;
  cfg.batch_size = 50;
  cfg.learning_rate = 1.0;
  cfg.tolerance = 0;
  HomoNnParams params;
  params.hidden_dim = 6;
  HomoNnTrainer trainer(shards, rig.session(), cfg, params);
  auto result = trainer.Train().value();
  // Monotone-ish improvement: each epoch's loss below the first.
  EXPECT_LT(result.final_loss, result.epochs.front().loss);
  EXPECT_LT(result.final_loss, 0.693);  // better than the random-init plateau
  EXPECT_GT(result.final_accuracy, 0.5);
  EXPECT_GT(result.epochs[0].he_seconds, 0.0);
  EXPECT_GT(result.epochs[0].comm_bytes, 0u);
}

TEST(HomoNnTest, ParameterVectorLayout) {
  Rig rig(2, true);
  auto ds = GenerateDataset(DatasetSpec{DatasetKind::kSynthetic, 40, 10, 10, 4})
                .value();
  auto shards = HorizontalSplit(ds, 2).value();
  HomoNnParams params;
  params.hidden_dim = 4;
  HomoNnTrainer trainer(shards, rig.session(), TrainConfig{}, params);
  // W1 (4x10) + b1 (4) + w2 (4) + b2 (1).
  EXPECT_EQ(trainer.parameter_count(), 4u * 10 + 4 + 4 + 1);
  auto probs = trainer.Predict(ds);
  EXPECT_EQ(probs.size(), ds.rows());
  for (double p : probs) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST(HomoNnTest, ModeledMatchesRealTrajectory) {
  auto ds = GenerateDataset(DatasetSpec{DatasetKind::kSynthetic, 80, 8, 8, 4})
                .value();
  auto shards = HorizontalSplit(ds, 2).value();
  TrainConfig cfg;
  cfg.max_epochs = 2;
  cfg.batch_size = 40;
  cfg.tolerance = 0;
  HomoNnParams params;
  params.hidden_dim = 4;

  Rig real(2, false), modeled(2, true);
  HomoNnTrainer rt(shards, real.session(), cfg, params);
  HomoNnTrainer mt(shards, modeled.session(), cfg, params);
  auto rres = rt.Train().value();
  auto mres = mt.Train().value();
  ASSERT_EQ(rres.epochs.size(), mres.epochs.size());
  for (size_t e = 0; e < rres.epochs.size(); ++e) {
    EXPECT_NEAR(rres.epochs[e].loss, mres.epochs[e].loss, 1e-9);
  }
}

TEST(HomoNnTest, MultipleLocalStepsStillSynchronize) {
  Rig rig(2, true);
  auto ds = GenerateDataset(DatasetSpec{DatasetKind::kSynthetic, 80, 8, 8, 4})
                .value();
  auto shards = HorizontalSplit(ds, 2).value();
  TrainConfig cfg;
  cfg.max_epochs = 3;
  cfg.batch_size = 40;
  cfg.learning_rate = 0.5;
  cfg.tolerance = 0;
  HomoNnParams params;
  params.hidden_dim = 4;
  params.local_steps = 3;  // FedAvg with E > 1
  HomoNnTrainer trainer(shards, rig.session(), cfg, params);
  auto result = trainer.Train().value();
  EXPECT_LT(result.final_loss, result.epochs.front().loss + 1e-12);
}

TEST(HomoNnTest, PlatformIntegration) {
  core::PlatformConfig cfg;
  cfg.engine = core::EngineKind::kFlBooster;
  cfg.model = core::FlModelKind::kHomoNn;
  cfg.dataset = DatasetSpec{DatasetKind::kSynthetic, 64, 16, 16, 5};
  cfg.num_parties = 2;
  cfg.key_bits = 1024;
  cfg.modeled = true;
  cfg.train.max_epochs = 1;
  cfg.train.batch_size = 32;
  cfg.homo_nn.hidden_dim = 4;
  auto report = core::Platform::Run(cfg).value();
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GT(report.he_ops.encrypts, 0u);
  EXPECT_EQ(core::ModelName(core::FlModelKind::kHomoNn), "Homo NN");
}

}  // namespace
}  // namespace flb::fl
