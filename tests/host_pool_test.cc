// Host execution engine tests: the work-stealing ThreadPool, the Paillier
// obfuscation pool / precompute caches, and the determinism contract —
// results, statuses, op counts, and simulated time must be bit-identical
// for ANY thread count (DESIGN.md "Host execution engine").

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/he_service.h"
#include "src/core/platform.h"
#include "src/crypto/paillier.h"
#include "src/crypto/paillier_eval.h"
#include "src/ghe/ghe_engine.h"
#include "src/gpusim/device.h"

namespace flb {
namespace {

using common::ParallelForEachStatus;
using common::ThreadPool;
using crypto::PaillierContext;
using crypto::PaillierKeyGen;
using crypto::PaillierKeyPair;
using crypto::PaillierOptions;
using mpint::BigInt;

// ---- ThreadPool basics ------------------------------------------------------

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, FewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelForEach(3, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](int64_t, int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(64);
  pool.ParallelFor(64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      seen[static_cast<size_t>(i)] = std::this_thread::get_id();
    }
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, StatsCountCallsAndTasks) {
  ThreadPool pool(4);
  const auto before = pool.stats();
  pool.ParallelFor(1024, [](int64_t, int64_t) {});
  const auto after = pool.stats();
  EXPECT_EQ(after.parallel_fors, before.parallel_fors + 1);
  EXPECT_GT(after.tasks, before.tasks);
}

TEST(ThreadPoolTest, ThreadsFromEnvParsing) {
  EXPECT_EQ(ThreadPool::ThreadsFromEnv("4", 2), 4);
  EXPECT_EQ(ThreadPool::ThreadsFromEnv("1", 2), 1);
  EXPECT_EQ(ThreadPool::ThreadsFromEnv("0", 2), 2);    // non-positive
  EXPECT_EQ(ThreadPool::ThreadsFromEnv("-3", 2), 2);   // non-positive
  EXPECT_EQ(ThreadPool::ThreadsFromEnv("abc", 2), 2);  // non-numeric
  EXPECT_EQ(ThreadPool::ThreadsFromEnv(nullptr, 2), 2);
}

TEST(ThreadPoolTest, ParallelForEachStatusReportsSmallestErrorIndex) {
  // Two failing indices: the smaller one must win at every thread count.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    return ParallelForEachStatus(pool, 1000, [](size_t i) {
      if (i == 17 || i == 800) {
        return Status::InvalidArgument("element " + std::to_string(i));
      }
      return Status::OK();
    });
  };
  const Status s1 = run(1);
  EXPECT_FALSE(s1.ok());
  for (int threads : {2, 8}) {
    const Status sn = run(threads);
    EXPECT_EQ(sn.ToString(), s1.ToString()) << "threads=" << threads;
  }
  ThreadPool pool(4);
  EXPECT_TRUE(ParallelForEachStatus(pool, 0, [](size_t) {
                return Status::InvalidArgument("never called");
              }).ok());
}

// ---- Obfuscation pool + precompute caches -----------------------------------

class ObfuscationPoolTest : public ::testing::Test {
 protected:
  static const PaillierKeyPair& Keys() {
    static const PaillierKeyPair keys = [] {
      Rng rng(42);
      return PaillierKeyGen(256, rng).value();
    }();
    return keys;
  }
};

TEST_F(ObfuscationPoolTest, RoundTripsAcrossManyRefreshes) {
  PaillierOptions opts;
  opts.obfuscation_pool_size = 4;
  auto ctx = PaillierContext::Create(Keys(), opts).value();
  Rng rng(7);  // untouched by the pool path; passed for interface parity
  // 50 encryptions over a 4-slot pool: every slot is refreshed ~12 times.
  for (uint64_t i = 0; i < 50; ++i) {
    const BigInt m(i * 97 + 5);
    const BigInt c = ctx.Encrypt(m, rng).value();
    EXPECT_EQ(ctx.Decrypt(c).value(), m) << "draw " << i;
  }
  EXPECT_EQ(ctx.obfuscation_pool().draws(), 50u);
  EXPECT_EQ(ctx.obfuscation_pool().refreshes(), 50u);
}

TEST_F(ObfuscationPoolTest, DrawOrderIsDeterministicPerKey) {
  // Two contexts over the same key produce the same ciphertext stream, and
  // the caller's rng is never consumed on the pool path.
  auto ctx1 = PaillierContext::Create(Keys()).value();
  auto ctx2 = PaillierContext::Create(Keys()).value();
  Rng r1(1), r2(999);  // different seeds: must not matter
  for (uint64_t i = 0; i < 20; ++i) {
    const BigInt m(i + 1);
    EXPECT_EQ(ctx1.Encrypt(m, r1).value(), ctx2.Encrypt(m, r2).value());
  }
  EXPECT_EQ(r1.NextU64(), Rng(1).NextU64());  // rng untouched
}

TEST_F(ObfuscationPoolTest, SecureObfuscationMatchesSeedPathReference) {
  PaillierOptions opts;
  opts.secure_obfuscation = true;
  auto ctx = PaillierContext::Create(Keys(), opts).value();
  ASSERT_TRUE(ctx.secure_obfuscation());
  const BigInt& n = ctx.pub().n;
  const BigInt n2 = ctx.pub().n_squared;
  const BigInt m(123456789);
  Rng rng(31), ref_rng(31);
  const BigInt c = ctx.Encrypt(m, rng).value();
  // Reference: g = n+1 fast path, fresh r^n powm, same rng stream.
  const BigInt r = crypto::DrawUnit(n, ref_rng);
  const BigInt gm = BigInt::Add(BigInt(1), BigInt::Mul(m, n)) % n2;
  const BigInt rn = ctx.n2_ctx().ModPow(r, n);
  EXPECT_EQ(c, ctx.n2_ctx().ModMul(gm, rn));
  EXPECT_EQ(ctx.Decrypt(c).value(), m);
}

TEST_F(ObfuscationPoolTest, PoolAndSecurePathsDecryptIdentically) {
  PaillierOptions secure;
  secure.secure_obfuscation = true;
  auto pool_ctx = PaillierContext::Create(Keys()).value();
  auto secure_ctx = PaillierContext::Create(Keys(), secure).value();
  Rng rng(5);
  std::vector<BigInt> ms;
  for (uint64_t i = 0; i < 16; ++i) ms.push_back(BigInt(i * 1009));
  auto pool_cs = pool_ctx.EncryptBatch(ms, rng).value();
  auto secure_cs = secure_ctx.EncryptBatch(ms, rng).value();
  for (size_t i = 0; i < ms.size(); ++i) {
    EXPECT_EQ(pool_ctx.Decrypt(pool_cs[i]).value(), ms[i]);
    EXPECT_EQ(secure_ctx.Decrypt(secure_cs[i]).value(), ms[i]);
  }
}

// ---- Batch helpers: thread-count invariance ---------------------------------

class BatchInvarianceTest : public ::testing::Test {
 protected:
  static const PaillierKeyPair& Keys() {
    static const PaillierKeyPair keys = [] {
      Rng rng(77);
      return PaillierKeyGen(256, rng).value();
    }();
    return keys;
  }

  static std::vector<BigInt> Messages(size_t count) {
    std::vector<BigInt> ms;
    for (size_t i = 0; i < count; ++i) ms.push_back(BigInt(i * 31 + 1));
    return ms;
  }
};

TEST_F(BatchInvarianceTest, AllBatchHelpersAreBitIdenticalAcrossThreadCounts) {
  const auto ms = Messages(37);  // odd count: uneven chunking
  const auto ks = Messages(37);

  struct Run {
    std::vector<BigInt> enc, dec, add, add_plain, scalar_mul;
    uint64_t encrypts, decrypts, adds, scalar_muls;
  };
  auto run_all = [&](int threads) {
    ThreadPool pool(threads);
    auto ctx = PaillierContext::Create(Keys()).value();
    Rng rng(13);
    Run r;
    r.enc = ctx.EncryptBatch(ms, rng, &pool).value();
    r.dec = ctx.DecryptBatch(r.enc, &pool).value();
    r.add = ctx.AddBatch(r.enc, r.enc, &pool).value();
    r.add_plain = ctx.AddPlainBatch(r.enc, ks, &pool).value();
    r.scalar_mul = ctx.ScalarMulBatch(r.enc, ks, &pool).value();
    const auto& oc = ctx.op_counts();
    r.encrypts = oc.encrypts.load();
    r.decrypts = oc.decrypts.load();
    r.adds = oc.adds.load();
    r.scalar_muls = oc.scalar_muls.load();
    return r;
  };

  const Run base = run_all(1);
  EXPECT_EQ(base.dec, ms);
  EXPECT_EQ(base.encrypts, ms.size());
  EXPECT_EQ(base.decrypts, ms.size());
  for (int threads : {2, 8}) {
    const Run r = run_all(threads);
    EXPECT_EQ(r.enc, base.enc) << "threads=" << threads;
    EXPECT_EQ(r.dec, base.dec) << "threads=" << threads;
    EXPECT_EQ(r.add, base.add) << "threads=" << threads;
    EXPECT_EQ(r.add_plain, base.add_plain) << "threads=" << threads;
    EXPECT_EQ(r.scalar_mul, base.scalar_mul) << "threads=" << threads;
    EXPECT_EQ(r.encrypts, base.encrypts) << "threads=" << threads;
    EXPECT_EQ(r.decrypts, base.decrypts) << "threads=" << threads;
    EXPECT_EQ(r.adds, base.adds) << "threads=" << threads;
    EXPECT_EQ(r.scalar_muls, base.scalar_muls) << "threads=" << threads;
  }
}

TEST_F(BatchInvarianceTest, SecureObfuscationBatchIsInvariantToo) {
  PaillierOptions opts;
  opts.secure_obfuscation = true;
  const auto ms = Messages(19);
  auto run = [&](int threads) {
    ThreadPool pool(threads);
    auto ctx = PaillierContext::Create(Keys(), opts).value();
    Rng rng(29);
    return ctx.EncryptBatch(ms, rng, &pool).value();
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(8), base);
}

TEST_F(BatchInvarianceTest, BatchErrorsAndCountsAreInvariant) {
  // Oversized plaintexts at two indices: the reported error and the op
  // counters (bumped only on whole-batch success) match at any thread count.
  auto ms = Messages(64);
  ms[9] = Keys().pub.n;   // out of range
  ms[50] = Keys().pub.n;  // also out of range; index 9 must win
  auto run = [&](int threads, uint64_t* encrypts) {
    ThreadPool pool(threads);
    auto ctx = PaillierContext::Create(Keys()).value();
    Rng rng(3);
    const Status s = ctx.EncryptBatch(ms, rng, &pool).status();
    *encrypts = ctx.op_counts().encrypts.load();
    return s;
  };
  uint64_t enc1 = 0, encn = 0;
  const Status s1 = run(1, &enc1);
  EXPECT_FALSE(s1.ok());
  EXPECT_EQ(enc1, 0u);  // failed batch counts nothing
  for (int threads : {2, 8}) {
    EXPECT_EQ(run(threads, &encn).ToString(), s1.ToString());
    EXPECT_EQ(encn, 0u);
  }
}

// ---- GheEngine: outputs, statuses, and simulated time -----------------------

class GheInvarianceTest : public ::testing::Test {
 protected:
  struct Run {
    std::vector<BigInt> enc, sum, arith;
    std::string sub_error;
    double sim_seconds;
  };

  Run RunEngine(int threads) {
    ThreadPool pool(threads);
    SimClock clock;
    auto device = std::make_shared<gpusim::Device>(
        gpusim::DeviceSpec::Rtx3090(), &clock);
    ghe::GheConfig cfg;
    cfg.host_pool = &pool;
    ghe::GheEngine engine(device, cfg);

    Rng kr(11);
    auto keys = PaillierKeyGen(256, kr).value();
    auto ctx = PaillierContext::Create(keys).value();
    std::vector<BigInt> ms, a, b;
    for (uint64_t i = 0; i < 40; ++i) {
      ms.push_back(BigInt(i * 7 + 2));
      a.push_back(BigInt(i + 100));
      b.push_back(BigInt(i));
    }
    Run r;
    Rng er(17);
    r.enc = engine.PaillierEncrypt(ctx, ms, er).value();
    r.sum = engine.PaillierAdd(ctx, r.enc, r.enc).value();
    r.arith = engine.Add(a, b).value();
    // b[i] > a[i] for an early index: error text must be thread-invariant.
    std::vector<BigInt> bad = a;
    bad[3] = BigInt::Add(a[3], BigInt(1));
    r.sub_error = engine.Sub(a, bad).status().ToString();
    r.sim_seconds = clock.Now();
    return r;
  }
};

TEST_F(GheInvarianceTest, BatchOpsInvariantAcrossHostPools) {
  const Run base = RunEngine(1);
  EXPECT_GT(base.sim_seconds, 0.0);
  EXPECT_FALSE(base.sub_error.empty());
  for (int threads : {2, 8}) {
    const Run r = RunEngine(threads);
    EXPECT_EQ(r.enc, base.enc) << "threads=" << threads;
    EXPECT_EQ(r.sum, base.sum) << "threads=" << threads;
    EXPECT_EQ(r.arith, base.arith) << "threads=" << threads;
    EXPECT_EQ(r.sub_error, base.sub_error) << "threads=" << threads;
    // Host parallelism must not leak into the simulated timeline.
    EXPECT_EQ(r.sim_seconds, base.sim_seconds) << "threads=" << threads;
  }
}

// ---- HeService + Platform: end-to-end invariance ----------------------------

class ServiceInvarianceTest : public ::testing::Test {
 protected:
  struct Run {
    std::vector<BigInt> ciphertexts;
    std::vector<double> decrypted;
    double sim_seconds;
    uint64_t encrypts, values;
  };

  Run RunService(int host_threads) {
    SimClock clock;
    core::HeServiceOptions opts;
    opts.engine = core::EngineKind::kFate;  // CPU real path
    opts.key_bits = 256;
    opts.r_bits = 14;
    opts.participants = 4;
    opts.modeled = false;
    opts.frac_bits = 16;
    opts.host_threads = host_threads;
    auto he = core::HeService::Create(opts, &clock, nullptr).value();
    EXPECT_EQ(he->host_pool().num_threads(), host_threads);

    std::vector<double> values;
    for (int i = 0; i < 33; ++i) values.push_back(0.01 * i - 0.15);
    auto enc = he->EncryptValues(values).value();
    auto sum = he->AddCipher(enc, enc).value();
    Run r;
    r.ciphertexts = sum.data;
    r.decrypted = he->DecryptValues(sum).value();
    r.sim_seconds = clock.Now();
    r.encrypts = he->op_counts().encrypts;
    r.values = he->op_counts().values_encrypted;
    return r;
  }
};

TEST_F(ServiceInvarianceTest, RealCpuPathInvariantAcrossHostThreads) {
  const Run base = RunService(1);
  EXPECT_GT(base.sim_seconds, 0.0);
  for (int threads : {2, 8}) {
    const Run r = RunService(threads);
    EXPECT_EQ(r.ciphertexts, base.ciphertexts) << "threads=" << threads;
    EXPECT_EQ(r.decrypted, base.decrypted) << "threads=" << threads;
    EXPECT_EQ(r.sim_seconds, base.sim_seconds) << "threads=" << threads;
    EXPECT_EQ(r.encrypts, base.encrypts) << "threads=" << threads;
    EXPECT_EQ(r.values, base.values) << "threads=" << threads;
  }
}

TEST(PlatformInvarianceTest, RealTrainingRunInvariantAcrossHostThreads) {
  auto run = [](int host_threads) {
    core::PlatformConfig cfg;
    cfg.engine = core::EngineKind::kFlBooster;
    cfg.model = core::FlModelKind::kHomoLr;
    cfg.key_bits = 256;
    cfg.modeled = false;  // real crypto end to end
    cfg.num_parties = 2;
    cfg.host_threads = host_threads;
    cfg.train.max_epochs = 1;
    cfg.train.batch_size = 32;
    cfg.dataset = fl::DefaultScaleSpec(fl::DatasetKind::kSynthetic);
    cfg.dataset.rows = 64;
    cfg.dataset.cols = 8;
    cfg.dataset.nnz_per_row = 8;
    return core::Platform::Run(cfg).value();
  };
  const auto base = run(1);
  ASSERT_FALSE(base.train.epochs.empty());
  for (int threads : {2, 8}) {
    const auto r = run(threads);
    ASSERT_EQ(r.train.epochs.size(), base.train.epochs.size());
    for (size_t e = 0; e < base.train.epochs.size(); ++e) {
      EXPECT_EQ(r.train.epochs[e].loss, base.train.epochs[e].loss);
      EXPECT_EQ(r.train.epochs[e].accuracy, base.train.epochs[e].accuracy);
    }
    EXPECT_EQ(r.total_seconds, base.total_seconds) << "threads=" << threads;
    EXPECT_EQ(r.comm_bytes, base.comm_bytes) << "threads=" << threads;
    EXPECT_EQ(r.comm_messages, base.comm_messages) << "threads=" << threads;
    EXPECT_EQ(r.he_ops.encrypts, base.he_ops.encrypts);
    EXPECT_EQ(r.he_ops.decrypts, base.he_ops.decrypts);
  }
}

}  // namespace
}  // namespace flb
