// Fixture: a file every rule is happy with — ordered containers, seeded
// determinism, annotated locking, handled statuses. flb_lint must report
// zero violations here.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/mutex.h"

namespace fixture {

class Status {
 public:
  bool ok() const { return true; }
};

Status SendFrame(int seq);

class Counter {
 public:
  void Bump(const std::string& key) {
    flb::common::MutexLock lock(mu_);
    ++counts_[key];
  }

  std::vector<uint8_t> Serialize() const {
    flb::common::MutexLock lock(mu_);
    std::vector<uint8_t> payload;
    for (const auto& [key, count] : counts_) {
      payload.push_back(static_cast<uint8_t>(key.size() + count));
    }
    return payload;
  }

  Status Flush() {
    // The status is consumed, not dropped.
    Status s = SendFrame(0);
    return s;
  }

 private:
  mutable flb::common::Mutex mu_;
  std::map<std::string, uint64_t> counts_ FLB_GUARDED_BY(mu_);
};

}  // namespace fixture
