// Fixture: FLB005 discarded-status. Dropping a Status/Result return loses
// typed errors on send/ack paths; (void)-casting without a justification is
// the same bug wearing a hat. Violations are pinned to exact lines by
// tests/flb_lint_test.cc — edit with care.

namespace fixture {

class Status {
 public:
  bool ok() const { return true; }
};

Status SendFrame(int seq);
Status AckFrame(int seq);

void Retransmit() {
  SendFrame(1);         // line 17: FLB005 (bare discard)
  (void)AckFrame(1);    // line 18: FLB005 ((void) cast, no justification)
  (void)AckFrame(2);    // flb-lint: allow(FLB005) ack failure handled by RTO
  Status s = SendFrame(3);
  if (!s.ok()) return;
}

}  // namespace fixture
