// Fixture: FLB002 entropy. Unseeded randomness outside common::Rng breaks
// bit-identical replay. Violations are pinned to exact lines by
// tests/flb_lint_test.cc — edit with care.

namespace fixture {

int NondeterministicDraw() {
  return rand() % 7;  // line 8: FLB002
}

}  // namespace fixture
