// Fixture: FLB004 mutex-annotation. A raw std::mutex member is invisible
// to -Wthread-safety, and a common::Mutex member that no FLB_* annotation
// references guards nothing the analysis can check. Violations are pinned
// to exact lines by tests/flb_lint_test.cc — edit with care.

#include <mutex>

#include "src/common/mutex.h"

namespace fixture {

class BadRawMutex {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }

 private:
  std::mutex mu_;  // line 20: FLB004 (raw std::mutex member)
  int count_ = 0;
};

class UnreferencedMutex {
 public:
  void Bump() {
    flb::common::MutexLock lock(mu_);
    ++count_;
  }

 private:
  flb::common::Mutex mu_;  // line 32: FLB004 (no annotation references mu_)
  int count_ = 0;
};

}  // namespace fixture
