// Fixture: what the AutoTuner's measurement loop must NOT look like —
// timing warm-up probes with a host clock (FLB001) and drawing the
// exploration pick from ambient entropy (FLB002). The real tuner measures
// in simulated seconds and draws with Rng::ForStream — flb_lint_test.cc
// asserts src/core/tuner.{h,cc} scan clean with zero allowances.

#include <chrono>
#include <random>

namespace fixture {

// A successive-halving round that stopwatches the probe on the host.
double MeasureCandidateEpoch() {
  const auto start = std::chrono::steady_clock::now();  // line 14: FLB001
  const double epoch_seconds = 0.0;
  const auto end = std::chrono::steady_clock::now();  // line 16: FLB001
  return epoch_seconds + std::chrono::duration<double>(end - start).count();
}

// An exploration candidate drawn from ambient entropy: irreproducible.
unsigned ExplorationPick(unsigned candidates) {
  std::random_device entropy;  // line 22: FLB002
  return entropy() % candidates;
}

}  // namespace fixture
