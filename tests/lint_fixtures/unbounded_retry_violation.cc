// Fixture: FLB006 unbounded-retry. A loop that `continue`s on transient
// transport failure (kUnavailable / kDeadlineExceeded) without consulting
// an attempt counter or a common::Deadline spins forever against a dead
// peer. Violations are pinned to exact lines by tests/flb_lint_test.cc —
// edit with care.

namespace fixture {

class Status {
 public:
  bool ok() const { return true; }
  bool IsUnavailable() const { return false; }
  bool IsDeadlineExceeded() const { return false; }
};

Status Poll();

void SpinForever() {
  while (true) {  // line 19: FLB006 (no budget anywhere in the loop)
    Status s = Poll();
    if (s.IsUnavailable()) continue;
    if (s.ok()) break;
  }
}

// Compliant: the attempt counter bounds the spin.
void BoundedRetry() {
  for (int attempt = 0; attempt < 5; ++attempt) {
    Status s = Poll();
    if (s.IsUnavailable()) continue;
    if (s.ok()) break;
  }
}

// Compliant: the loop consults a deadline before every retry.
void DeadlineBoundedRetry(bool (*deadline_expired)()) {
  while (!deadline_expired()) {
    Status s = Poll();
    if (s.IsDeadlineExceeded()) continue;
    if (s.ok()) break;
  }
}

}  // namespace fixture
