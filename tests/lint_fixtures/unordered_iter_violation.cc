// Fixture: FLB003 unordered-iter. Hash-order traversal feeding a payload
// serializes in nondeterministic order. Violations are pinned to exact
// lines by tests/flb_lint_test.cc — edit with care.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

std::vector<uint8_t> SerializeCounts(
    const std::unordered_map<std::string, uint64_t>& bytes_by_topic) {
  std::vector<uint8_t> payload;
  for (const auto& [topic, count] : bytes_by_topic) {  // line 15: FLB003
    payload.push_back(static_cast<uint8_t>(topic.size() + count));
  }
  return payload;
}

}  // namespace fixture
