// Fixture: FLB001 wall-clock. Reading a real clock in a charged path makes
// simulated timings depend on the host machine. Violations are pinned to
// exact lines by tests/flb_lint_test.cc — edit with care.

#include <chrono>

namespace fixture {

double ChargedSeconds() {
  const auto now = std::chrono::system_clock::now();  // line 10: FLB001
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace fixture
