// Tests for model persistence (LR weights, SecureBoost forests) and the
// AUC metric.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/he_service.h"
#include "src/fl/hetero_sbt.h"
#include "src/fl/metrics.h"
#include "src/fl/model_io.h"
#include "src/fl/partition.h"

namespace flb::fl {
namespace {

TEST(ModelIoTest, LrRoundTrip) {
  std::vector<double> weights{0.5, -1.25, 3.0e-7, 0.0, 123.456};
  auto bytes = SerializeLrModel(weights);
  auto back = DeserializeLrModel(bytes).value();
  EXPECT_EQ(back, weights);
}

TEST(ModelIoTest, LrRejectsCorruption) {
  auto bytes = SerializeLrModel({1.0, 2.0});
  // Flip a payload byte: checksum must catch it.
  auto corrupt = bytes;
  corrupt.back() ^= 0xFF;
  EXPECT_TRUE(DeserializeLrModel(corrupt).status().IsIoError());
  // Truncation.
  corrupt = bytes;
  corrupt.resize(corrupt.size() - 4);
  EXPECT_FALSE(DeserializeLrModel(corrupt).ok());
  // Wrong magic.
  corrupt = bytes;
  corrupt[0] ^= 0xFF;
  EXPECT_TRUE(DeserializeLrModel(corrupt).status().IsInvalidArgument());
  // SBT magic into LR loader.
  auto sbt_bytes = SerializeSbtModel({}, 0.1);
  EXPECT_FALSE(DeserializeLrModel(sbt_bytes).ok());
}

TEST(ModelIoTest, SbtForestRoundTripFromTraining) {
  // Train a real (modeled-HE) forest, serialize, reload, and check the
  // reloaded trees predict identically.
  SimClock clock;
  auto device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), &clock);
  net::Network network(net::LinkSpec::GigabitEthernet(), &clock);
  core::HeServiceOptions opts;
  opts.engine = core::EngineKind::kFlBooster;
  opts.key_bits = 256;
  opts.frac_bits = 16;
  opts.participants = 2;
  opts.modeled = true;
  auto he = core::HeService::Create(opts, &clock, device).value();

  auto ds = GenerateDataset(DatasetSpec{DatasetKind::kSynthetic, 60, 8, 8, 4})
                .value();
  auto part = VerticalSplit(ds, 2).value();
  TrainConfig cfg;
  cfg.max_epochs = 2;
  cfg.learning_rate = 0.5;
  cfg.tolerance = 0;
  SbtParams params;
  params.max_depth = 3;
  params.num_bins = 4;
  HeteroSbtTrainer trainer(part, FlSession{he.get(), &network, &clock}, cfg,
                           params);
  trainer.Train().value();

  auto bytes = SerializeSbtModel(trainer.trees(), cfg.learning_rate);
  auto model = DeserializeSbtModel(bytes).value();
  EXPECT_DOUBLE_EQ(model.learning_rate, cfg.learning_rate);
  ASSERT_EQ(model.trees.size(), trainer.trees().size());
  for (size_t t = 0; t < model.trees.size(); ++t) {
    ASSERT_EQ(model.trees[t].nodes.size(), trainer.trees()[t].nodes.size());
    for (size_t n = 0; n < model.trees[t].nodes.size(); ++n) {
      const auto& a = model.trees[t].nodes[n];
      const auto& b = trainer.trees()[t].nodes[n];
      EXPECT_EQ(a.is_leaf, b.is_leaf);
      EXPECT_EQ(a.split_party, b.split_party);
      EXPECT_EQ(a.split_feature, b.split_feature);
      EXPECT_EQ(a.split_bin, b.split_bin);
      EXPECT_EQ(a.left, b.left);
      EXPECT_EQ(a.right, b.right);
      EXPECT_DOUBLE_EQ(a.leaf_weight, b.leaf_weight);
    }
  }
}

TEST(ModelIoTest, SbtRejectsBadChildIndices) {
  SbtTree tree;
  tree.nodes.emplace_back();
  tree.nodes[0].is_leaf = false;
  tree.nodes[0].left = 5;  // out of range
  tree.nodes[0].right = 6;
  auto bytes = SerializeSbtModel({tree}, 0.1);
  EXPECT_TRUE(DeserializeSbtModel(bytes).status().IsInvalidArgument());
}

TEST(MetricsAucTest, PerfectAndInverted) {
  std::vector<double> probs{0.1, 0.2, 0.8, 0.9};
  std::vector<float> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(Auc(probs, labels), 1.0);
  std::vector<float> inverted{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(Auc(probs, inverted), 0.0);
}

TEST(MetricsAucTest, RandomScoresNearHalf) {
  Rng rng(9);
  std::vector<double> probs;
  std::vector<float> labels;
  for (int i = 0; i < 4000; ++i) {
    probs.push_back(rng.NextDouble());
    labels.push_back(rng.NextBernoulli(0.5) ? 1.0f : 0.0f);
  }
  EXPECT_NEAR(Auc(probs, labels), 0.5, 0.05);
}

TEST(MetricsAucTest, TiesShareCredit) {
  // All predictions identical -> AUC is exactly 0.5 regardless of labels.
  std::vector<double> probs(10, 0.7);
  std::vector<float> labels{1, 0, 1, 0, 1, 0, 1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(Auc(probs, labels), 0.5);
}

TEST(MetricsAucTest, SingleClassReturnsHalf) {
  std::vector<double> probs{0.1, 0.9};
  std::vector<float> labels{1, 1};
  EXPECT_DOUBLE_EQ(Auc(probs, labels), 0.5);
}

TEST(MetricsAucTest, KnownSmallCase) {
  // probs: pos {0.8, 0.4}, neg {0.6, 0.2}. Pairs: (0.8>0.6)+(0.8>0.2)+
  // (0.4<0.6=0)+(0.4>0.2) = 3 of 4 -> 0.75.
  std::vector<double> probs{0.8, 0.4, 0.6, 0.2};
  std::vector<float> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(Auc(probs, labels), 0.75);
}

}  // namespace
}  // namespace flb::fl
