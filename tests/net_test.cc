// Tests for serialization and the simulated network.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/net/network.h"
#include "src/net/serializer.h"

namespace flb::net {
namespace {

using mpint::BigInt;

TEST(SerializerTest, PrimitivesRoundTrip) {
  Serializer s;
  s.PutU32(0xDEADBEEF);
  s.PutU64(0x0123456789ABCDEFULL);
  s.PutDouble(-2.5);
  s.PutString("federated");
  Deserializer d(s.bytes());
  EXPECT_EQ(d.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(d.GetU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(d.GetDouble().value(), -2.5);
  EXPECT_EQ(d.GetString().value(), "federated");
  EXPECT_TRUE(d.AtEnd());
}

TEST(SerializerTest, BigIntVariableAndFixed) {
  Rng rng(1);
  Serializer s;
  BigInt a = BigInt::Random(rng, 300);
  BigInt b = BigInt::Random(rng, 64);
  s.PutBigInt(a);
  s.PutBigIntFixed(b, 16);  // padded to 16 words
  Deserializer d(s.bytes());
  EXPECT_EQ(d.GetBigInt().value(), a);
  EXPECT_EQ(d.GetBigIntFixed(16).value(), b);
  EXPECT_TRUE(d.AtEnd());
}

TEST(SerializerTest, BatchesRoundTrip) {
  Rng rng(2);
  std::vector<BigInt> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(BigInt::Random(rng, 128));
  std::vector<double> doubles{1.0, -0.5, 3.25};
  Serializer s;
  s.PutBigIntBatchFixed(batch, 8);
  s.PutDoubleVector(doubles);
  Deserializer d(s.bytes());
  auto batch_back = d.GetBigIntBatchFixed(8).value();
  ASSERT_EQ(batch_back.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) EXPECT_EQ(batch_back[i], batch[i]);
  EXPECT_EQ(d.GetDoubleVector().value(), doubles);
}

TEST(SerializerTest, TruncationDetected) {
  Serializer s;
  s.PutU64(42);
  std::vector<uint8_t> cut(s.bytes().begin(), s.bytes().begin() + 4);
  Deserializer d(cut);
  EXPECT_TRUE(d.GetU64().status().IsOutOfRange());
  // String with a length prefix longer than the payload.
  Serializer s2;
  s2.PutU32(100);
  Deserializer d2(s2.bytes());
  EXPECT_FALSE(d2.GetString().ok());
}

TEST(NetworkTest, SendReceiveByTopic) {
  Network net;
  ASSERT_TRUE(net.Send("a", "b", "grad", {1, 2, 3}).ok());
  ASSERT_TRUE(net.Send("a", "b", "loss", {9}).ok());
  EXPECT_EQ(net.PendingFor("b"), 2u);
  auto loss = net.Receive("b", "loss").value();
  EXPECT_EQ(loss.payload, std::vector<uint8_t>{9});
  EXPECT_EQ(loss.from, "a");
  auto grad = net.Receive("b", "grad").value();
  EXPECT_EQ(grad.payload.size(), 3u);
  EXPECT_EQ(net.PendingFor("b"), 0u);
  EXPECT_TRUE(net.Receive("b", "grad").status().IsNotFound());
}

TEST(NetworkTest, FifoWithinTopic) {
  Network net;
  ASSERT_TRUE(net.Send("a", "b", "t", {1}).ok());
  ASSERT_TRUE(net.Send("c", "b", "t", {2}).ok());
  EXPECT_EQ(net.Receive("b", "t")->from, "a");
  EXPECT_EQ(net.Receive("b", "t")->from, "c");
}

TEST(NetworkTest, SelfSendRejected) {
  Network net;
  EXPECT_TRUE(net.Send("a", "a", "t", {}).IsInvalidArgument());
}

TEST(NetworkTest, TimeAndByteAccounting) {
  SimClock clock;
  Network net(LinkSpec::GigabitEthernet(), &clock);
  const size_t payload = 1 << 20;
  ASSERT_TRUE(net.Send("a", "b", "t", std::vector<uint8_t>(payload)).ok());
  // ~1 MiB at ~117 MB/s plus latency.
  const double expected =
      net.link().latency_sec + (payload + 64) / net.link().bandwidth_bytes_per_sec;
  EXPECT_NEAR(clock.Elapsed(CostKind::kNetwork), expected, 1e-9);
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_EQ(net.stats().bytes, payload + 64);
  EXPECT_EQ(net.stats().bytes_by_topic.at("t"), payload + 64);
}

TEST(NetworkTest, LinkPresetsOrdering) {
  // WAN is slower than GigE is slower than 10GigE for the same payload.
  Network wan(LinkSpec::Wan()), gige(LinkSpec::GigabitEthernet()),
      tengig(LinkSpec::TenGigabit());
  const size_t bytes = 10 << 20;
  EXPECT_GT(wan.TransferSeconds(bytes), gige.TransferSeconds(bytes));
  EXPECT_GT(gige.TransferSeconds(bytes), tengig.TransferSeconds(bytes));
}

}  // namespace
}  // namespace flb::net
