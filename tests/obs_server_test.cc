// Tests for the live-inspection plane: the Prometheus text encoder, the
// RunStatus /status snapshot, the embedded ObsServer (real loopback
// sockets), the HostProfiler wall plane, trace-drop surfacing, and the
// determinism contract — a hammered scrape server must not change run
// results by a single bit.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/core/platform.h"
#include "src/obs/host_profiler.h"
#include "src/obs/metrics.h"
#include "src/obs/obs_server.h"
#include "src/obs/prometheus.h"
#include "src/obs/run_status.h"
#include "src/obs/trace.h"

namespace flb {
namespace {

using obs::HistogramBucket;
using obs::MetricsRegistry;
using obs::MetricType;
using obs::MetricValue;
using obs::ObsServer;
using obs::RunStatus;
using obs::TraceRecorder;

// ---------------------------------------------------------------------------
// Prometheus encoder
// ---------------------------------------------------------------------------

TEST(PrometheusEncoder, SanitizesNames) {
  EXPECT_EQ(obs::PrometheusName("flb.net.reliable.retransmits"),
            "flb_net_reliable_retransmits");
  EXPECT_EQ(obs::PrometheusName("already_fine:ok"), "already_fine:ok");
  EXPECT_EQ(obs::PrometheusName("7seconds"), "_7seconds");
  EXPECT_EQ(obs::PrometheusName(""), "_");
  EXPECT_EQ(obs::PrometheusName("a-b c"), "a_b_c");
  // Label names additionally reject ':'.
  EXPECT_EQ(obs::PrometheusLabelName("le:gacy"), "le_gacy");
}

TEST(PrometheusEncoder, EscapesLabelValues) {
  EXPECT_EQ(obs::PrometheusLabelValue("plain"), "plain");
  EXPECT_EQ(obs::PrometheusLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::PrometheusLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::PrometheusLabelValue("a\nb"), "a\\nb");
}

TEST(PrometheusEncoder, ParsesCanonicalLabels) {
  const auto pairs = obs::ParseLabels("engine=FLBooster,key_bits=1024");
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].first, "engine");
  EXPECT_EQ(pairs[0].second, "FLBooster");
  EXPECT_EQ(pairs[1].first, "key_bits");
  EXPECT_EQ(pairs[1].second, "1024");
  EXPECT_EQ(obs::PrometheusLabelSet(""), "");
  EXPECT_EQ(obs::PrometheusLabelSet("model=Homo LR"),
            "{model=\"Homo LR\"}");
}

TEST(PrometheusEncoder, RendersCountersAndGauges) {
  std::vector<MetricValue> metrics;
  MetricValue c;
  c.name = "flb.fl.epochs";
  c.labels = "model=homo_lr";
  c.type = MetricType::kCounter;
  c.value = 3;
  metrics.push_back(c);
  c.labels = "model=hetero_lr";
  c.value = 5;
  metrics.push_back(c);
  MetricValue g;
  g.name = "flb.host.queue_depth";
  g.type = MetricType::kGauge;
  g.value = 7;
  metrics.push_back(g);

  const std::string text = obs::RenderPrometheus(metrics);
  // One TYPE line per name, not per sample.
  EXPECT_NE(text.find("# TYPE flb_fl_epochs counter\n"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE flb_fl_epochs counter",
                      text.find("# TYPE flb_fl_epochs counter") + 1),
            std::string::npos);
  EXPECT_NE(text.find("flb_fl_epochs{model=\"homo_lr\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("flb_fl_epochs{model=\"hetero_lr\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE flb_host_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("flb_host_queue_depth 7\n"), std::string::npos);
}

TEST(PrometheusEncoder, RendersHistogramsCumulativeWithInf) {
  // Sparse registry-style snapshot: empty buckets omitted, no overflow
  // bucket recorded.
  MetricValue h;
  h.name = "flb.fl.epoch_seconds";
  h.type = MetricType::kHistogram;
  h.count = 6;
  h.value = 12.5;  // sum
  h.buckets.push_back(HistogramBucket{0.01, 2});
  h.buckets.push_back(HistogramBucket{1.0, 3});
  h.buckets.push_back(HistogramBucket{10.0, 1});

  const std::string text = obs::RenderPrometheus({h});
  EXPECT_NE(text.find("# TYPE flb_fl_epoch_seconds histogram\n"),
            std::string::npos);
  // Cumulative, not per-bucket: 2, 5, 6.
  EXPECT_NE(text.find("flb_fl_epoch_seconds_bucket{le=\"0.01\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("flb_fl_epoch_seconds_bucket{le=\"1\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("flb_fl_epoch_seconds_bucket{le=\"10\"} 6\n"),
            std::string::npos);
  // Explicit +Inf bucket synthesized with the total count.
  EXPECT_NE(text.find("flb_fl_epoch_seconds_bucket{le=\"+Inf\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("flb_fl_epoch_seconds_sum 12.5\n"), std::string::npos);
  EXPECT_NE(text.find("flb_fl_epoch_seconds_count 6\n"), std::string::npos);
}

TEST(PrometheusEncoder, RegistrySnapshotRoundTrips) {
  MetricsRegistry registry;
  registry.Count("flb.test.ops", 2, "kind=a");
  registry.Set("flb.test.gauge", 4.25);
  registry.Observe("flb.test.lat", 0.5);
  registry.Observe("flb.test.lat", 2.0);

  const std::string text = obs::RenderPrometheus(registry.Collect());
  EXPECT_NE(text.find("flb_test_ops{kind=\"a\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("flb_test_gauge 4.25\n"), std::string::npos);
  EXPECT_NE(text.find("flb_test_lat_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("flb_test_lat_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  // Every histogram bucket series must be monotonically non-decreasing in
  // cumulative count; spot-check by scanning the rendered lines.
  size_t pos = 0;
  long last = -1;
  while ((pos = text.find("flb_test_lat_bucket", pos)) != std::string::npos) {
    const size_t space = text.find(' ', pos);
    const long v = std::stol(text.substr(space + 1));
    EXPECT_GE(v, last);
    last = v;
    pos = space;
  }
}

// ---------------------------------------------------------------------------
// RunStatus
// ---------------------------------------------------------------------------

TEST(RunStatusTest, SnapshotLifecycle) {
  RunStatus status;
  EXPECT_EQ(status.phase(), "idle");

  obs::RunInfo info;
  info.engine = "FLBooster";
  info.model = "Homo LR";
  info.key_bits = 1024;
  info.parties = 4;
  info.seed = 42;
  status.BeginRun(info);
  EXPECT_EQ(status.phase(), "setup");
  const uint64_t gen_after_begin = status.generation();

  obs::EpochStatus epoch;
  epoch.epoch = 1;
  epoch.max_epochs = 5;
  epoch.loss = 0.25;
  obs::HeOpsStatus he;
  he.encrypts = 10;
  status.UpdateEpoch(epoch, he);
  EXPECT_EQ(status.phase(), "train");
  EXPECT_GT(status.generation(), gen_after_begin);

  obs::RunTotals totals;
  totals.total_seconds = 12.0;
  status.EndRun(totals, he);
  EXPECT_EQ(status.phase(), "done");

  status.NoteScrape("status");
  status.NoteScrape("bogus");
  const std::string json = status.ToJson();
  EXPECT_NE(json.find("\"phase\":\"done\""), std::string::npos);
  EXPECT_NE(json.find("\"engine\":\"FLBooster\""), std::string::npos);
  EXPECT_NE(json.find("\"key_bits\":1024"), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":{\"epoch\":1,\"max_epochs\":5"),
            std::string::npos);
  EXPECT_NE(json.find("\"encrypts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"total_seconds\":12"), std::string::npos);
  EXPECT_NE(json.find("\"status\":1"), std::string::npos);
  EXPECT_NE(json.find("\"other\":1"), std::string::npos);

  status.Reset();
  EXPECT_EQ(status.phase(), "idle");
  EXPECT_NE(status.ToJson().find("\"status\":0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ObsServer
// ---------------------------------------------------------------------------

// Minimal loopback HTTP client (blocking; Connection: close).
std::string HttpRequest(int port, const std::string& method,
                        const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = method + " " + target +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) < 0) {
    ::close(fd);
    return "";
  }
  std::string response;
  char buf[4096];
  ssize_t r;
  while ((r = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(ObsServerTest, HandleRoutesWithoutSockets) {
  EXPECT_EQ(ObsServer::Handle("GET", "/healthz").status, 200);
  EXPECT_EQ(ObsServer::Handle("GET", "/metrics").status, 200);
  EXPECT_EQ(ObsServer::Handle("GET", "/status").status, 200);
  EXPECT_EQ(ObsServer::Handle("GET", "/trace").status, 200);
  EXPECT_EQ(ObsServer::Handle("GET", "/metrics?x=1").status, 200);
  EXPECT_EQ(ObsServer::Handle("GET", "/nope").status, 404);
  EXPECT_EQ(ObsServer::Handle("POST", "/metrics").status, 405);
  EXPECT_EQ(
      ObsServer::Handle("GET", "/metrics").content_type,
      "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(ObsServer::Handle("GET", "/status").content_type,
            "application/json");
}

TEST(ObsServerTest, ServesAllEndpointsOverLoopback) {
  ObsServer::Options options;
  options.port = 0;  // ephemeral
  auto server = ObsServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = (*server)->port();
  ASSERT_GT(port, 0);

  const std::string healthz = HttpRequest(port, "GET", "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(Body(healthz), "ok\n");

  MetricsRegistry::Global().Count("flb.test.served", 1);
  const std::string metrics = HttpRequest(port, "GET", "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE flb_test_served counter"),
            std::string::npos);
  // Drop gauge folded into every /metrics scrape.
  EXPECT_NE(metrics.find("flb_obs_trace_dropped_events"), std::string::npos);

  const std::string status = HttpRequest(port, "GET", "/status");
  EXPECT_NE(status.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(status.find("application/json"), std::string::npos);
  EXPECT_NE(Body(status).find("\"phase\":"), std::string::npos);
  EXPECT_NE(Body(status).find("\"server\":{\"requests\":"),
            std::string::npos);

  const std::string trace = HttpRequest(port, "GET", "/trace");
  EXPECT_NE(trace.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(Body(trace).find("\"traceEvents\""), std::string::npos);

  EXPECT_NE(HttpRequest(port, "GET", "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(HttpRequest(port, "POST", "/metrics").find("HTTP/1.1 405"),
            std::string::npos);

  (*server)->Stop();
}

TEST(ObsServerTest, StartFailsCleanlyOnPortCollision) {
  ObsServer::Options options;
  options.port = 0;
  auto first = ObsServer::Start(options);
  ASSERT_TRUE(first.ok());
  options.port = (*first)->port();
  auto second = ObsServer::Start(options);
  EXPECT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsIoError());
  (*first)->Stop();
}

// ---------------------------------------------------------------------------
// HostProfiler wall plane
// ---------------------------------------------------------------------------

TEST(HostProfilerTest, RecordsWallSpansAndMetrics) {
  auto& recorder = TraceRecorder::Global();
  const bool was_enabled = recorder.enabled();
  recorder.set_enabled(true);
  recorder.Clear();

  auto& profiler = obs::HostProfiler::Global();
  profiler.Enable();
  ASSERT_TRUE(profiler.enabled());
  ASSERT_EQ(common::ThreadPool::observer(), &profiler);

  common::ThreadPool pool(4);
  std::vector<double> out(4096, 0.0);
  pool.ParallelFor(static_cast<int64_t>(out.size()),
                   [&](int64_t begin, int64_t end) {
                     for (int64_t i = begin; i < end; ++i) {
                       out[static_cast<size_t>(i)] =
                           std::sqrt(static_cast<double>(i));
                     }
                   });

  // Wall spans landed on the host.wall process.
  const std::string trace = recorder.ToJson();
  EXPECT_NE(trace.find("host.wall"), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"wall\""), std::string::npos);

  // Metrics source contributes the per-worker counters + contention plane.
  const std::string metrics =
      obs::RenderPrometheus(MetricsRegistry::Global().Collect());
  EXPECT_NE(metrics.find("flb_host_busy_ms{worker=\"0\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE flb_host_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE flb_host_lock_wait_seconds histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("flb_host_lock_wait_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);

  profiler.Disable();
  EXPECT_EQ(common::ThreadPool::observer(), nullptr);
  recorder.Clear();
  recorder.set_enabled(was_enabled);
}

TEST(HostProfilerTest, ObserverDoesNotChangeResults) {
  common::ThreadPool pool(3);
  const auto work = [](int64_t begin, int64_t end, std::vector<double>* out) {
    for (int64_t i = begin; i < end; ++i) {
      (*out)[static_cast<size_t>(i)] = std::sin(static_cast<double>(i)) * i;
    }
  };
  std::vector<double> baseline(10000, 0.0);
  pool.ParallelFor(10000, [&](int64_t b, int64_t e) { work(b, e, &baseline); });

  auto& profiler = obs::HostProfiler::Global();
  profiler.Enable();
  std::vector<double> observed(10000, 0.0);
  pool.ParallelFor(10000, [&](int64_t b, int64_t e) { work(b, e, &observed); });
  profiler.Disable();

  EXPECT_EQ(baseline, observed);  // bit-identical doubles
}

// ---------------------------------------------------------------------------
// Trace drop surfacing
// ---------------------------------------------------------------------------

TEST(TraceDropTest, DropsAreCountedAndPublished) {
  auto& recorder = TraceRecorder::Global();
  const bool was_enabled = recorder.enabled();
  recorder.set_enabled(true);
  recorder.Clear();
  recorder.set_max_events(4);

  const obs::Track track = recorder.RegisterTrack("test", "drops");
  for (int i = 0; i < 10; ++i) {
    recorder.Instant(track, "e" + std::to_string(i), "test",
                     static_cast<double>(i));
  }
  EXPECT_EQ(recorder.dropped_events(), 6u);
  EXPECT_NE(recorder.ToJson().find("\"dropped_events\":6"),
            std::string::npos);

  obs::PublishDropMetrics();
  bool found = false;
  for (const MetricValue& m : MetricsRegistry::Global().Collect()) {
    if (m.name == "flb.obs.trace.dropped_events") {
      found = true;
      EXPECT_EQ(m.type, MetricType::kGauge);
      EXPECT_DOUBLE_EQ(m.value, 6.0);
    }
  }
  EXPECT_TRUE(found);

  recorder.set_max_events(1000000);
  recorder.Clear();
  EXPECT_EQ(recorder.dropped_events(), 0u);
  recorder.set_enabled(was_enabled);
}

// ---------------------------------------------------------------------------
// Determinism: scraping a live run must not change its results
// ---------------------------------------------------------------------------

core::PlatformConfig ScrapeWorkload() {
  core::PlatformConfig cfg;
  cfg.engine = core::EngineKind::kFlBooster;
  cfg.model = core::FlModelKind::kHomoLr;
  cfg.key_bits = 256;
  cfg.modeled = true;
  cfg.num_parties = 4;
  cfg.host_threads = 4;
  cfg.train.max_epochs = 4;
  cfg.train.batch_size = 64;
  cfg.dataset.rows = 2048;
  cfg.dataset.cols = 64;
  cfg.dataset.nnz_per_row = 32;
  cfg.seed = 20230401;
  return cfg;
}

void ExpectIdenticalReports(const core::RunReport& a,
                            const core::RunReport& b) {
  ASSERT_EQ(a.train.epochs.size(), b.train.epochs.size());
  for (size_t i = 0; i < a.train.epochs.size(); ++i) {
    EXPECT_EQ(a.train.epochs[i].loss, b.train.epochs[i].loss);
    EXPECT_EQ(a.train.epochs[i].accuracy, b.train.epochs[i].accuracy);
    EXPECT_EQ(a.train.epochs[i].sim_seconds_cum,
              b.train.epochs[i].sim_seconds_cum);
    EXPECT_EQ(a.train.epochs[i].comm_bytes, b.train.epochs[i].comm_bytes);
  }
  EXPECT_EQ(a.train.final_loss, b.train.final_loss);
  EXPECT_EQ(a.train.converged, b.train.converged);
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.he_seconds, b.he_seconds);
  EXPECT_EQ(a.comm_seconds, b.comm_seconds);
  EXPECT_EQ(a.comm_bytes, b.comm_bytes);
  EXPECT_EQ(a.comm_messages, b.comm_messages);
  EXPECT_EQ(a.he_ops.encrypts, b.he_ops.encrypts);
  EXPECT_EQ(a.he_ops.decrypts, b.he_ops.decrypts);
  EXPECT_EQ(a.he_ops.values_encrypted, b.he_ops.values_encrypted);
  EXPECT_EQ(a.he_throughput, b.he_throughput);
  EXPECT_EQ(a.pack_ratio, b.pack_ratio);
}

TEST(ObsServerScrapeTest, LiveScrapesDoNotPerturbRun) {
  // Baseline: no server, no profiler.
  auto baseline = core::Platform::Run(ScrapeWorkload());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Same workload with the whole observability plane on and a client
  // hammering every endpoint from several threads for the duration.
  auto& recorder = TraceRecorder::Global();
  const bool was_enabled = recorder.enabled();
  recorder.set_enabled(true);
  ObsServer::Options options;
  options.port = 0;
  auto server = ObsServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = (*server)->port();
  obs::HostProfiler::Global().Enable();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scrapes{0};
  std::vector<std::thread> clients;
  const char* const kTargets[] = {"/metrics", "/status", "/trace",
                                  "/healthz"};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::string response =
            HttpRequest(port, "GET", kTargets[c % 4]);
        if (!response.empty()) scrapes.fetch_add(1);
      }
    });
  }

  auto observed = core::Platform::Run(ScrapeWorkload());

  // The modeled run can outpace a scrape round-trip; the server stays up
  // after the run, so wait (bounded) until every endpoint was hit at least
  // once before releasing the clients.
  for (int i = 0; i < 500 && scrapes.load() < 8; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  obs::HostProfiler::Global().Disable();
  (*server)->Stop();
  recorder.Clear();
  recorder.set_enabled(was_enabled);

  ASSERT_TRUE(observed.ok()) << observed.status().ToString();
  EXPECT_GT(scrapes.load(), 0u);  // clients really did scrape mid-run
  ExpectIdenticalReports(*baseline, *observed);

  // The run left a coherent /status behind.
  const std::string status = RunStatus::Global().ToJson();
  EXPECT_NE(status.find("\"phase\":\"done\""), std::string::npos);
  EXPECT_NE(status.find("\"model\":\"Homo LR\""), std::string::npos);
}

TEST(ObsServerScrapeTest, ScrapesDuringCrashResumeAreBitIdentical) {
  // The resilience layer meets the observability plane: a chaos run whose
  // server crashes mid-training (forcing a checkpoint resume) while scrape
  // threads hammer every endpoint must produce the exact report of the
  // same chaos run with no scrapers — and the resume really happened.
  auto chaos_workload = [] {
    auto cfg = ScrapeWorkload();
    cfg.train.max_epochs = 6;
    // Server down across several mid-training rounds; a short per-message
    // retry budget makes the clients give up and ride the resume path.
    cfg.fault_plan = "seed=3;crash=server@0.3-1.2";
    cfg.reliable.deadline_sec = 0.05;
    cfg.run_deadline_sec = 600.0;  // simulated; bounds the run, never hit
    return cfg;
  };
  auto baseline = core::Platform::Run(chaos_workload());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_GE(baseline->robustness.resumes, 1u);

  auto& recorder = TraceRecorder::Global();
  const bool was_enabled = recorder.enabled();
  recorder.set_enabled(true);
  ObsServer::Options options;
  options.port = 0;
  auto server = ObsServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = (*server)->port();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scrapes{0};
  std::vector<std::thread> clients;
  const char* const kTargets[] = {"/metrics", "/status", "/trace",
                                  "/healthz"};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::string response =
            HttpRequest(port, "GET", kTargets[c % 4]);
        if (!response.empty()) scrapes.fetch_add(1);
      }
    });
  }

  auto observed = core::Platform::Run(chaos_workload());

  for (int i = 0; i < 500 && scrapes.load() < 8; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  (*server)->Stop();
  recorder.Clear();
  recorder.set_enabled(was_enabled);

  ASSERT_TRUE(observed.ok()) << observed.status().ToString();
  EXPECT_GT(scrapes.load(), 0u);
  ExpectIdenticalReports(*baseline, *observed);
  // The chaos accounting is part of the bit-identity contract too.
  EXPECT_EQ(baseline->robustness.resumes, observed->robustness.resumes);
  EXPECT_EQ(baseline->robustness.checkpoints, observed->robustness.checkpoints);
  EXPECT_EQ(baseline->robustness.transport_dropouts,
            observed->robustness.transport_dropouts);
  EXPECT_EQ(baseline->channel_stats.retransmits,
            observed->channel_stats.retransmits);
  EXPECT_EQ(baseline->breaker_stats.trips, observed->breaker_stats.trips);

  // The run left the resilience block behind in /status.
  const std::string status = RunStatus::Global().ToJson();
  EXPECT_NE(status.find("\"resilience\":{"), std::string::npos);
  EXPECT_NE(status.find("\"breaker_trips\":"), std::string::npos);
}

}  // namespace
}  // namespace flb
