// Tests for the flb::obs tracing/metrics layer: span nesting against the
// simulated clock, trace JSON well-formedness, metrics snapshot/reset
// semantics (including the Device/Network reset routing), the multi-stream
// GHE overlap regression, and the bench result writer's schema.

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "src/common/sim_clock.h"
#include "src/ghe/ghe_engine.h"
#include "src/gpusim/device.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flb {
namespace {

using obs::MetricsRegistry;
using obs::MetricType;
using obs::MetricValue;
using obs::ScopedSpan;
using obs::Track;
using obs::TraceEvent;
using obs::TraceRecorder;

// ---------------------------------------------------------------------------
// Minimal JSON parser — enough to validate the exported documents without a
// third-party dependency. Supports objects, arrays, strings (with escapes),
// numbers, true/false/null.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& At(const std::string& key) const {
    return object.at(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipWs();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->type = JsonValue::Type::kNull;
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }
  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->type = JsonValue::Type::kObject;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }
  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->type = JsonValue::Type::kArray;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            // Keep the escape verbatim: the tests only need validity.
            out->append("\\u").append(text_, pos_, 4);
            pos_ += 4;
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }
  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->type = JsonValue::Type::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Enables the global recorder for one test and restores state afterwards.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& rec = TraceRecorder::Global();
    previous_enabled_ = rec.enabled();
    rec.set_enabled(true);
    rec.Clear();
  }
  void TearDown() override {
    auto& rec = TraceRecorder::Global();
    rec.Clear();
    rec.set_max_events(1000000);
    rec.set_enabled(previous_enabled_);
    MetricsRegistry::Global().ResetAll();
  }
  bool previous_enabled_ = false;
};

// ---------------------------------------------------------------------------
// Spans vs the simulated clock
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ScopedSpanNestsWithSimulatedTime) {
  auto& rec = TraceRecorder::Global();
  SimClock clock;
  const Track track = rec.RegisterTrack("test", "nesting");
  {
    ScopedSpan outer(&clock, track, "outer");
    clock.Charge(CostKind::kOther, 1.0);
    {
      ScopedSpan inner(&clock, track, "inner");
      clock.Charge(CostKind::kOther, 2.0);
    }
    clock.Charge(CostKind::kOther, 3.0);
  }
  ASSERT_EQ(rec.events().size(), 2u);
  // Destruction order: inner closes first.
  const TraceEvent& inner = rec.events()[0];
  const TraceEvent& outer = rec.events()[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_DOUBLE_EQ(inner.ts_us, 1.0e6);
  EXPECT_DOUBLE_EQ(inner.dur_us, 2.0e6);
  EXPECT_DOUBLE_EQ(outer.ts_us, 0.0);
  EXPECT_DOUBLE_EQ(outer.dur_us, 6.0e6);
  // The inner span lies strictly within the outer span.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
}

TEST_F(ObsTest, ChargeSpanChargesAndRecords) {
  auto& rec = TraceRecorder::Global();
  SimClock clock;
  const Track track = rec.RegisterTrack("test", "charge");
  obs::ChargeSpan(&clock, CostKind::kNetwork, 0.5, track, "send", "network");
  EXPECT_DOUBLE_EQ(clock.Now(), 0.5);
  ASSERT_EQ(rec.events().size(), 1u);
  EXPECT_DOUBLE_EQ(rec.events()[0].ts_us, 0.0);
  EXPECT_DOUBLE_EQ(rec.events()[0].dur_us, 0.5e6);
  // Null clock: nothing charged, nothing recorded.
  obs::ChargeSpan(nullptr, CostKind::kNetwork, 0.5, track, "send", "network");
  EXPECT_EQ(rec.events().size(), 1u);
}

TEST_F(ObsTest, DisabledRecorderRecordsNothing) {
  auto& rec = TraceRecorder::Global();
  rec.set_enabled(false);
  SimClock clock;
  const Track track = rec.RegisterTrack("test", "disabled");
  {
    ScopedSpan span(&clock, track, "span");
    clock.Charge(CostKind::kOther, 1.0);
  }
  rec.Instant(track, "instant", "test", 1.0);
  rec.Counter(track, "counter", 1.0, 2.0);
  EXPECT_TRUE(rec.events().empty());
}

TEST_F(ObsTest, EventCapDropsAndCounts) {
  auto& rec = TraceRecorder::Global();
  rec.set_max_events(10);
  const Track track = rec.RegisterTrack("test", "cap");
  for (int i = 0; i < 25; ++i) {
    rec.Instant(track, "i" + std::to_string(i), "test", i);
  }
  EXPECT_EQ(rec.events().size(), 10u);
  EXPECT_EQ(rec.dropped_events(), 15u);
  // Clear resets the dropped counter but keeps track registrations.
  rec.Clear();
  EXPECT_EQ(rec.dropped_events(), 0u);
  const Track again = rec.RegisterTrack("test", "cap");
  EXPECT_EQ(again.pid, track.pid);
  EXPECT_EQ(again.tid, track.tid);
}

TEST_F(ObsTest, UniqueProcessNamesNeverCollide) {
  auto& rec = TraceRecorder::Global();
  const std::string a = rec.UniqueProcessName("thing");
  const std::string b = rec.UniqueProcessName("thing");
  EXPECT_NE(a, b);
  const Track ta = rec.RegisterTrack(a, "t");
  const Track tb = rec.RegisterTrack(b, "t");
  EXPECT_NE(ta.pid, tb.pid);
}

// ---------------------------------------------------------------------------
// Trace JSON well-formedness
// ---------------------------------------------------------------------------

TEST_F(ObsTest, TraceJsonParsesWithRequiredFields) {
  auto& rec = TraceRecorder::Global();
  const Track track = rec.RegisterTrack("proc \"quoted\"", "thread\n1");
  rec.Span(track, "span", "cat", 0.0, 1.5, {obs::Arg("bytes", uint64_t{42})});
  rec.Instant(track, "mark", "cat", 2.0);
  rec.Counter(track, "gauge", 2.5, 7.0);

  JsonValue doc;
  ASSERT_TRUE(JsonParser(rec.ToJson()).Parse(&doc))
      << "trace JSON failed to parse";
  ASSERT_TRUE(doc.Has("traceEvents"));
  const auto& events = doc.At("traceEvents").array;
  ASSERT_FALSE(events.empty());

  int metadata = 0, spans = 0, instants = 0, counters = 0;
  for (const JsonValue& e : events) {
    ASSERT_TRUE(e.Has("ph"));
    const std::string ph = e.At("ph").str;
    ASSERT_TRUE(e.Has("name"));
    ASSERT_TRUE(e.Has("pid"));
    ASSERT_TRUE(e.Has("tid"));
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_TRUE(e.Has("ts"));
    EXPECT_EQ(e.At("ts").type, JsonValue::Type::kNumber);
    if (ph == "X") {
      ++spans;
      ASSERT_TRUE(e.Has("dur"));
      EXPECT_GE(e.At("dur").number, 0.0);
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "C") {
      ++counters;
      ASSERT_TRUE(e.Has("args"));
    } else {
      FAIL() << "unexpected phase: " << ph;
    }
  }
  EXPECT_GE(metadata, 2);  // process_name + thread_name
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(counters, 1);
}

TEST_F(ObsTest, TraceJsonSkipsMetadataForUnusedTracks) {
  auto& rec = TraceRecorder::Global();
  rec.RegisterTrack("used", "t");
  rec.RegisterTrack("unused", "t");
  rec.Instant(rec.RegisterTrack("used", "t"), "e", "c", 0.0);
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"used\""), std::string::npos);
  EXPECT_EQ(json.find("\"unused\""), std::string::npos);
}

// Spans that share a track must be disjoint or strictly nested — a device
// stream is an in-order queue, so interleaved (partially overlapping) spans
// on one track indicate broken timestamp accounting.
void CheckPerTrackSpansDisjointOrNested(const std::vector<TraceEvent>& events) {
  std::map<std::pair<int, int>, std::vector<std::pair<double, double>>> spans;
  for (const TraceEvent& e : events) {
    if (e.phase != TraceEvent::Phase::kComplete) continue;
    spans[{e.track.pid, e.track.tid}].push_back(
        {e.ts_us, e.ts_us + e.dur_us});
  }
  constexpr double kSlackUs = 1e-6;
  for (auto& [track, list] : spans) {
    std::sort(list.begin(), list.end());
    for (size_t i = 0; i + 1 < list.size(); ++i) {
      const auto& a = list[i];
      const auto& b = list[i + 1];
      const bool disjoint = b.first >= a.second - kSlackUs;
      const bool nested = b.second <= a.second + kSlackUs;
      EXPECT_TRUE(disjoint || nested)
          << "track (" << track.first << "," << track.second
          << ") spans interleave: [" << a.first << "," << a.second << ") vs ["
          << b.first << "," << b.second << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Device tracing: sync + async timelines
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DeviceSyncOpsTraceOnSimulatedTimeline) {
  auto& rec = TraceRecorder::Global();
  SimClock clock;
  gpusim::Device device(gpusim::DeviceSpec::Rtx3090(), &clock);
  device.CopyToDevice(1 << 20);
  gpusim::KernelLaunch launch;
  launch.name = "k";
  launch.total_threads = 4096;
  launch.ops_per_thread = 64;
  ASSERT_TRUE(device.Launch(launch).ok());
  device.CopyFromDevice(1 << 20);

  // Events land at the clock positions where each op started, and the
  // kernel follows the H2D copy.
  std::vector<const TraceEvent*> spans;
  for (const TraceEvent& e : rec.events()) {
    if (e.phase == TraceEvent::Phase::kComplete) spans.push_back(&e);
  }
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0]->name, "h2d");
  EXPECT_EQ(spans[1]->name, "k");
  EXPECT_EQ(spans[2]->name, "d2h");
  EXPECT_DOUBLE_EQ(spans[0]->ts_us, 0.0);
  EXPECT_DOUBLE_EQ(spans[1]->ts_us, spans[0]->ts_us + spans[0]->dur_us);
  EXPECT_DOUBLE_EQ(spans[2]->ts_us, spans[1]->ts_us + spans[1]->dur_us);
  EXPECT_NEAR(clock.Now() * 1e6, spans[2]->ts_us + spans[2]->dur_us, 1e-3);
  CheckPerTrackSpansDisjointOrNested(rec.events());
}

TEST_F(ObsTest, MultiStreamGheTraceShowsCopyComputeOverlap) {
  auto& rec = TraceRecorder::Global();
  SimClock clock;
  auto device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), &clock);
  ghe::GheConfig cfg;
  cfg.streams = 4;
  cfg.adaptive_chunking = false;  // force the chunked path
  ghe::GheEngine engine(device, cfg);
  ASSERT_TRUE(engine.ModelPaillierAdd(1024, 1 << 14).ok());
  ASSERT_TRUE(engine.last_batch().async);
  ASSERT_EQ(engine.last_batch().chunks, 4);

  // Collect H2D spans and kernel spans with their stream ids.
  struct Win {
    double start, end;
    int stream;
  };
  std::vector<Win> h2d, kernels;
  for (const TraceEvent& e : rec.events()) {
    if (e.phase != TraceEvent::Phase::kComplete) continue;
    int stream = -1;
    for (const auto& arg : e.args) {
      if (arg.key == "stream") stream = std::stoi(arg.json_value);
    }
    if (e.category == "pcie" && e.name == "h2d") {
      h2d.push_back({e.ts_us, e.ts_us + e.dur_us, stream});
    } else if (e.category == "kernel") {
      kernels.push_back({e.ts_us, e.ts_us + e.dur_us, stream});
    }
  }
  ASSERT_EQ(h2d.size(), 4u);
  ASSERT_EQ(kernels.size(), 4u);

  // Regression: the H2D copy of a later chunk overlaps the kernel of an
  // earlier chunk (the whole point of the multi-stream schedule).
  bool overlap_found = false;
  for (const Win& c : h2d) {
    for (const Win& k : kernels) {
      if (c.stream != k.stream && c.start < k.end && k.start < c.end) {
        overlap_found = true;
      }
    }
  }
  EXPECT_TRUE(overlap_found)
      << "no H2D copy overlapped any other stream's kernel";
  CheckPerTrackSpansDisjointOrNested(rec.events());

  // The trace covers exactly the charged window: last event end == clock.
  double last_end = 0.0;
  for (const TraceEvent& e : rec.events()) {
    if (e.phase == TraceEvent::Phase::kComplete) {
      last_end = std::max(last_end, e.ts_us + e.dur_us);
    }
  }
  EXPECT_NEAR(last_end, clock.Now() * 1e6, 1e-3);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CountersGaugesHistograms) {
  MetricsRegistry reg;
  reg.Count("flb.test.counter", 1);
  reg.Count("flb.test.counter", 2);
  reg.Count("flb.test.counter", 5, "k=v");
  reg.Set("flb.test.gauge", 3.5);
  reg.Set("flb.test.gauge", 4.5);  // gauges overwrite
  reg.Observe("flb.test.hist", 0.001);
  reg.Observe("flb.test.hist", 0.01);
  reg.Observe("flb.test.hist", 100.0);

  const auto snapshot = reg.Collect();
  ASSERT_EQ(snapshot.size(), 4u);
  // Sorted by (name, labels): counter "", counter "k=v", gauge, hist.
  EXPECT_EQ(snapshot[0].name, "flb.test.counter");
  EXPECT_EQ(snapshot[0].labels, "");
  EXPECT_DOUBLE_EQ(snapshot[0].value, 3.0);
  EXPECT_EQ(snapshot[1].labels, "k=v");
  EXPECT_DOUBLE_EQ(snapshot[1].value, 5.0);
  EXPECT_EQ(snapshot[2].type, MetricType::kGauge);
  EXPECT_DOUBLE_EQ(snapshot[2].value, 4.5);
  const MetricValue& hist = snapshot[3];
  EXPECT_EQ(hist.type, MetricType::kHistogram);
  EXPECT_EQ(hist.count, 3u);
  EXPECT_DOUBLE_EQ(hist.min, 0.001);
  EXPECT_DOUBLE_EQ(hist.max, 100.0);
  EXPECT_NEAR(hist.value, 100.011, 1e-9);  // sum
  uint64_t bucket_total = 0;
  for (const auto& b : hist.buckets) bucket_total += b.count;
  EXPECT_EQ(bucket_total, 3u);
}

TEST_F(ObsTest, MetricsJsonParses) {
  MetricsRegistry reg;
  reg.Count("flb.test.counter", 2, "a=b");
  reg.Observe("flb.test.hist", 0.5);
  JsonValue doc;
  ASSERT_TRUE(JsonParser(reg.ToJson()).Parse(&doc));
  ASSERT_TRUE(doc.Has("metrics"));
  const auto& metrics = doc.At("metrics").array;
  ASSERT_EQ(metrics.size(), 2u);
  for (const JsonValue& m : metrics) {
    ASSERT_TRUE(m.Has("name"));
    ASSERT_TRUE(m.Has("labels"));
    ASSERT_TRUE(m.Has("type"));
    ASSERT_TRUE(m.Has("value"));
  }
  const JsonValue& hist = metrics[1];
  ASSERT_TRUE(hist.Has("buckets"));
  ASSERT_TRUE(hist.Has("count"));
  EXPECT_DOUBLE_EQ(hist.At("count").number, 1.0);
}

TEST_F(ObsTest, ResetAllClearsOwnMetricsAndSources) {
  auto& reg = MetricsRegistry::Global();
  const size_t baseline_sources = reg.num_sources();

  SimClock clock;
  gpusim::Device device(gpusim::DeviceSpec::Rtx3090(), &clock);
  net::Network network(net::LinkSpec::GigabitEthernet(), &clock);
  EXPECT_EQ(reg.num_sources(), baseline_sources + 2);

  device.CopyToDevice(1 << 16);
  ASSERT_TRUE(network.Send("a", "b", "topic", std::vector<uint8_t>(100), 1)
                  .ok());
  reg.Count("flb.test.ad_hoc", 1);

  // The snapshot sees both the ad-hoc counter and the sources' stats.
  auto find = [](const std::vector<MetricValue>& ms, const std::string& name) {
    double total = 0.0;
    for (const auto& m : ms) {
      if (m.name == name) total += m.value;
    }
    return total;
  };
  auto before = reg.Collect();
  EXPECT_DOUBLE_EQ(find(before, "flb.test.ad_hoc"), 1.0);
  EXPECT_DOUBLE_EQ(find(before, "flb.gpusim.h2d_copies"), 1.0);
  EXPECT_DOUBLE_EQ(find(before, "flb.net.messages"), 1.0);

  // ResetAll routes through Device::ResetStats / Network::ResetStats — the
  // one reset path, fixing the old per-struct asymmetry.
  reg.ResetAll();
  EXPECT_EQ(device.stats().h2d_copies, 0u);
  EXPECT_EQ(network.stats().messages, 0u);
  auto after = reg.Collect();
  EXPECT_DOUBLE_EQ(find(after, "flb.test.ad_hoc"), 0.0);
  EXPECT_DOUBLE_EQ(find(after, "flb.gpusim.h2d_copies"), 0.0);
  EXPECT_DOUBLE_EQ(find(after, "flb.net.messages"), 0.0);
}

TEST_F(ObsTest, SourcesUnregisterOnDestruction) {
  auto& reg = MetricsRegistry::Global();
  const size_t baseline = reg.num_sources();
  {
    gpusim::Device device(gpusim::DeviceSpec::Rtx3090(), nullptr);
    net::Network network;
    EXPECT_EQ(reg.num_sources(), baseline + 2);
  }
  EXPECT_EQ(reg.num_sources(), baseline);
}

// ---------------------------------------------------------------------------
// Bench result writer
// ---------------------------------------------------------------------------

TEST(BenchJsonTest, SchemaRoundTrips) {
  bench::BenchJson json;
  json.set_bench("bench_test");
  json.set_section("section one");
  json.Record("metric_a", 1.25, "s");
  json.Record("other section", "metric_b", 42.0, "values/s");
  EXPECT_EQ(json.num_records(), 2u);

  JsonValue doc;
  ASSERT_TRUE(JsonParser(json.ToJson()).Parse(&doc));
  EXPECT_EQ(doc.At("bench").str, "bench_test");
  const auto& results = doc.At("results").array;
  ASSERT_EQ(results.size(), 2u);
  for (const JsonValue& r : results) {
    ASSERT_TRUE(r.Has("bench"));
    ASSERT_TRUE(r.Has("section"));
    ASSERT_TRUE(r.Has("metric"));
    ASSERT_TRUE(r.Has("value"));
    ASSERT_TRUE(r.Has("unit"));
  }
  EXPECT_EQ(results[0].At("section").str, "section one");
  EXPECT_EQ(results[0].At("metric").str, "metric_a");
  EXPECT_DOUBLE_EQ(results[0].At("value").number, 1.25);
  EXPECT_EQ(results[1].At("section").str, "other section");
}

}  // namespace
}  // namespace flb
