// Tests for the §IV-A1 limb-parallel basic arithmetic: bit-exact agreement
// with the BigInt reference across thread decompositions, and the
// communication accounting.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/ghe/parallel_arith.h"

namespace flb::ghe {
namespace {

struct ArithCase {
  int bits;
  int threads;
};

class ParallelArithTest : public ::testing::TestWithParam<ArithCase> {
 protected:
  size_t s() const { return static_cast<size_t>(GetParam().bits) / 32; }
  int threads() const { return GetParam().threads; }
};

TEST_P(ParallelArithTest, AddMatchesReference) {
  Rng rng(100 + GetParam().bits + threads());
  for (int i = 0; i < 20; ++i) {
    const BigInt a = BigInt::Random(rng, GetParam().bits);
    const BigInt b = BigInt::Random(rng, GetParam().bits);
    ParallelMontStats stats;
    auto sum = ParallelAdd(a, b, s(), threads(), &stats);
    ASSERT_TRUE(sum.ok());
    EXPECT_EQ(sum.value(), BigInt::Add(a, b));
    EXPECT_GT(stats.limb_ops, 0u);
  }
}

TEST_P(ParallelArithTest, SubMatchesReference) {
  Rng rng(200 + GetParam().bits + threads());
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::Random(rng, GetParam().bits);
    BigInt b = BigInt::Random(rng, GetParam().bits);
    if (a < b) std::swap(a, b);
    auto diff = ParallelSub(a, b, s(), threads(), nullptr);
    ASSERT_TRUE(diff.ok());
    EXPECT_EQ(diff.value(), BigInt::Sub(a, b));
  }
}

TEST_P(ParallelArithTest, MulMatchesReference) {
  Rng rng(300 + GetParam().bits + threads());
  for (int i = 0; i < 10; ++i) {
    const BigInt a = BigInt::Random(rng, GetParam().bits);
    const BigInt b = BigInt::Random(rng, GetParam().bits);
    ParallelMontStats stats;
    auto prod = ParallelMul(a, b, s(), threads(), &stats);
    ASSERT_TRUE(prod.ok());
    EXPECT_EQ(prod.value(), BigInt::Mul(a, b));
    if (threads() > 1 && !a.IsZero() && !b.IsZero()) {
      // Cross-slice partial products are communications.
      EXPECT_GT(stats.inter_thread_comms, 0u);
    }
  }
}

TEST_P(ParallelArithTest, DivModMatchesReference) {
  Rng rng(400 + GetParam().bits + threads());
  for (int i = 0; i < 10; ++i) {
    const BigInt a = BigInt::Random(rng, GetParam().bits);
    BigInt b = BigInt::Random(rng, GetParam().bits / 2);
    if (b.IsZero()) b = BigInt(7);
    auto qr = ParallelDivMod(a, b, s(), threads(), nullptr);
    ASSERT_TRUE(qr.ok());
    auto expected = BigInt::DivMod(a, b).value();
    EXPECT_EQ(qr->first, expected.first);
    EXPECT_EQ(qr->second, expected.second);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ParallelArithTest,
                         ::testing::Values(ArithCase{128, 1},
                                           ArithCase{128, 4},
                                           ArithCase{512, 2},
                                           ArithCase{512, 16},
                                           ArithCase{1024, 8},
                                           ArithCase{2048, 32}));

TEST(ParallelArith, CarryCrossesSliceBoundary) {
  // a = 2^64 - 1 (fills thread 0's slice at x=2), b = 1: the carry must be
  // handed to thread 1.
  const BigInt a = BigInt::Sub(BigInt::PowerOfTwo(64), BigInt(1));
  const BigInt b(1);
  ParallelMontStats stats;
  auto sum = ParallelAdd(a, b, /*s=*/4, /*threads=*/2, &stats).value();
  EXPECT_EQ(sum, BigInt::PowerOfTwo(64));
  EXPECT_EQ(stats.inter_thread_comms, 1u);
}

TEST(ParallelArith, BorrowCrossesSliceBoundary) {
  const BigInt a = BigInt::PowerOfTwo(64);
  const BigInt b(1);
  ParallelMontStats stats;
  auto diff = ParallelSub(a, b, 4, 2, &stats).value();
  EXPECT_EQ(diff, BigInt::Sub(BigInt::PowerOfTwo(64), BigInt(1)));
  EXPECT_EQ(stats.inter_thread_comms, 1u);
}

TEST(ParallelArith, Validation) {
  const BigInt a(10), b(3);
  EXPECT_FALSE(ParallelAdd(a, b, 4, 3, nullptr).ok());  // 3 does not divide 4
  EXPECT_FALSE(ParallelAdd(a, b, 0, 1, nullptr).ok());
  EXPECT_TRUE(ParallelSub(b, a, 4, 2, nullptr).status().IsOutOfRange());
  EXPECT_TRUE(
      ParallelDivMod(a, BigInt(), 4, 2, nullptr).status().IsArithmeticError());
  // Operand wider than s limbs.
  EXPECT_FALSE(
      ParallelAdd(BigInt::PowerOfTwo(200), b, 4, 2, nullptr).ok());
}

TEST(ParallelArith, DivModEdgeCases) {
  // a < b, a == b, b == 1, power-of-two divisor.
  EXPECT_EQ(ParallelDivMod(BigInt(3), BigInt(7), 4, 2, nullptr)->first,
            BigInt());
  EXPECT_EQ(ParallelDivMod(BigInt(7), BigInt(7), 4, 2, nullptr)->first,
            BigInt(1));
  auto qr = ParallelDivMod(BigInt(123456789), BigInt(1), 4, 2, nullptr).value();
  EXPECT_EQ(qr.first, BigInt(123456789));
  EXPECT_TRUE(qr.second.IsZero());
  Rng rng(5);
  const BigInt a = BigInt::Random(rng, 120);
  auto qr2 = ParallelDivMod(a, BigInt::PowerOfTwo(40), 4, 4, nullptr).value();
  EXPECT_EQ(qr2.first, BigInt::ShiftRight(a, 40));
  EXPECT_EQ(qr2.second, BigInt::TruncateBits(a, 40));
}

}  // namespace
}  // namespace flb::ghe
