// Tests for the §V pipelined-processing model.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/pipeline.h"
#include "src/gpusim/device.h"

namespace flb::core {
namespace {

std::vector<PipelineStage> Stages(std::initializer_list<double> secs) {
  std::vector<PipelineStage> out;
  int i = 0;
  for (double s : secs) out.push_back({"s" + std::to_string(i++), s});
  return out;
}

TEST(PipelineScheduleTest, SingleChunkEqualsSerial) {
  auto stages = Stages({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(PipelineSchedule::OverlappedSeconds(stages, 1).value(), 6.0);
  EXPECT_DOUBLE_EQ(PipelineSchedule::SerialSeconds(stages, 1).value(), 6.0);
}

TEST(PipelineScheduleTest, ClassicPipelineFormula) {
  // fill (1+2+3) + (chunks-1) * bottleneck(3)
  auto stages = Stages({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(PipelineSchedule::OverlappedSeconds(stages, 4).value(),
                   6.0 + 3 * 3.0);
  EXPECT_DOUBLE_EQ(PipelineSchedule::SerialSeconds(stages, 4).value(), 24.0);
}

TEST(PipelineScheduleTest, BalancedStagesApproachStageCountSpeedup) {
  // With S equal stages and many chunks, speedup -> S.
  auto stages = Stages({1.0, 1.0, 1.0, 1.0});
  const int chunks = 1000;
  const double serial = PipelineSchedule::SerialSeconds(stages, chunks).value();
  const double overlapped =
      PipelineSchedule::OverlappedSeconds(stages, chunks).value();
  EXPECT_NEAR(serial / overlapped, 4.0, 0.05);
}

TEST(PipelineScheduleTest, BottleneckIdentified) {
  auto stages = Stages({1.0, 5.0, 2.0});
  EXPECT_EQ(PipelineSchedule::Bottleneck(stages).value().name, "s1");
}

TEST(PipelineScheduleTest, Validation) {
  EXPECT_FALSE(PipelineSchedule::OverlappedSeconds({}, 1).ok());
  EXPECT_FALSE(
      PipelineSchedule::OverlappedSeconds(Stages({1.0}), 0).ok());
  EXPECT_FALSE(
      PipelineSchedule::OverlappedSeconds(Stages({-1.0}), 1).ok());
}

class PipelinedModelTest : public ::testing::Test {
 protected:
  PipelinedModelTest()
      : device_(std::make_shared<gpusim::Device>(gpusim::DeviceSpec::Rtx3090(),
                                                 nullptr)),
        engine_(device_) {}
  std::shared_ptr<gpusim::Device> device_;
  ghe::GheEngine engine_;
};

TEST_F(PipelinedModelTest, OverlapNeverSlower) {
  for (int chunks : {1, 2, 8, 32}) {
    auto enc = PipelinedModel::Encrypt(engine_, 1024, 1 << 14, chunks).value();
    EXPECT_LE(enc.overlapped_seconds, enc.serial_seconds + 1e-12);
    EXPECT_GE(enc.speedup, 1.0);
    auto add = PipelinedModel::HomAdd(engine_, 1024, 1 << 16, chunks).value();
    EXPECT_LE(add.overlapped_seconds, add.serial_seconds + 1e-12);
  }
}

TEST_F(PipelinedModelTest, TransferBoundOpGainsFromChunking) {
  auto one = PipelinedModel::HomAdd(engine_, 2048, 1 << 18, 1).value();
  auto many = PipelinedModel::HomAdd(engine_, 2048, 1 << 18, 16).value();
  EXPECT_GT(many.speedup, 1.3);
  EXPECT_LT(many.overlapped_seconds, one.overlapped_seconds);
  // The bottleneck of a homomorphic-add chain is a PCIe stage.
  auto bn = PipelineSchedule::Bottleneck(many.stages_per_chunk).value();
  EXPECT_TRUE(bn.name == "h2d" || bn.name == "d2h") << bn.name;
}

TEST_F(PipelinedModelTest, KernelBoundOpBarelyChanges) {
  auto enc = PipelinedModel::Encrypt(engine_, 4096, 1 << 14, 8).value();
  EXPECT_LT(enc.speedup, 1.2);
  EXPECT_EQ(PipelineSchedule::Bottleneck(enc.stages_per_chunk)->name,
            "kernel");
}

TEST_F(PipelinedModelTest, ChunksClampedToBatch) {
  auto r = PipelinedModel::Encrypt(engine_, 1024, 3, 100).value();
  EXPECT_EQ(r.chunks, 3);
  EXPECT_FALSE(PipelinedModel::Encrypt(engine_, 1024, 0, 1).ok());
}

TEST_F(PipelinedModelTest, DeviceTimelineAgreesWithClosedForm) {
  // The device's actual stream timeline for a transfer-bound op: chunked
  // execution beats the serial launch. (The closed-form overlapped bound
  // also pipelines host stages, so it is not compared directly.)
  auto r = PipelinedModel::HomAdd(engine_, 2048, 1 << 16, 4).value();
  EXPECT_EQ(r.streams_used, 4);
  EXPECT_GT(r.device_async_seconds, 0.0);
  EXPECT_LT(r.device_async_seconds, r.device_serial_seconds);
  // Measurement passes must not leak into the engine/device telemetry.
  EXPECT_EQ(engine_.device().stats().kernels_launched, 0u);
  // The engine's configured stream count is restored afterwards.
  EXPECT_EQ(engine_.config().streams, 1);
}

TEST_F(PipelinedModelTest, KernelBoundOpStaysSerialOnDevice) {
  // Encryption is kernel-bound: the adaptive engine declines to chunk, so
  // the device-timeline numbers coincide.
  auto r = PipelinedModel::Encrypt(engine_, 2048, 1 << 10, 4).value();
  EXPECT_EQ(r.streams_used, 1);
  EXPECT_DOUBLE_EQ(r.device_async_seconds, r.device_serial_seconds);
}

}  // namespace
}  // namespace flb::core
