// Tests for the RSA-blind private set intersection (sample alignment).

#include <gtest/gtest.h>

#include "src/common/sim_clock.h"
#include "src/fl/psi.h"
#include "src/net/network.h"

namespace flb::fl {
namespace {

PsiOptions SmallOptions() {
  PsiOptions opts;
  opts.rsa_key_bits = 256;
  return opts;
}

TEST(PsiTest, FindsExactIntersection) {
  SimClock clock;
  net::Network network(net::LinkSpec::GigabitEthernet(), &clock);
  std::vector<uint64_t> guest = {1, 5, 9, 12, 42, 77, 100};
  std::vector<uint64_t> host = {2, 5, 12, 42, 99, 101};
  PsiStats stats;
  auto shared = RsaPsiIntersect(guest, host, SmallOptions(), &network, &clock,
                                &stats)
                    .value();
  EXPECT_EQ(shared, (std::vector<uint64_t>{5, 12, 42}));
  EXPECT_EQ(stats.guest_ids, 7u);
  EXPECT_EQ(stats.host_ids, 6u);
  EXPECT_EQ(stats.intersection, 3u);
  EXPECT_GT(stats.comm_bytes, 0u);
  EXPECT_GT(clock.Elapsed(CostKind::kCpuHe), 0.0);
  EXPECT_GT(clock.Elapsed(CostKind::kNetwork), 0.0);
}

TEST(PsiTest, DisjointSetsGiveEmptyResult) {
  net::Network network;
  auto shared = RsaPsiIntersect({1, 2, 3}, {4, 5, 6}, SmallOptions(),
                                &network, nullptr)
                    .value();
  EXPECT_TRUE(shared.empty());
}

TEST(PsiTest, IdenticalSetsGiveEverything) {
  net::Network network;
  std::vector<uint64_t> ids = {10, 20, 30, 40};
  auto shared =
      RsaPsiIntersect(ids, ids, SmallOptions(), &network, nullptr).value();
  EXPECT_EQ(shared, ids);
}

TEST(PsiTest, LargerSetsNoFalseMatches) {
  net::Network network;
  std::vector<uint64_t> guest, host;
  for (uint64_t i = 0; i < 200; ++i) guest.push_back(3 * i);       // multiples of 3
  for (uint64_t i = 0; i < 200; ++i) host.push_back(5 * i);        // multiples of 5
  auto shared =
      RsaPsiIntersect(guest, host, SmallOptions(), &network, nullptr).value();
  // Expected: multiples of 15 below min(600, 1000) -> 0,15,...,585.
  std::vector<uint64_t> expected;
  for (uint64_t v = 0; v < 600; v += 15) expected.push_back(v);
  EXPECT_EQ(shared, expected);
}

TEST(PsiTest, RequiresNetwork) {
  EXPECT_FALSE(RsaPsiIntersect({1}, {1}, SmallOptions(), nullptr, nullptr).ok());
}

TEST(PsiTest, NetworkDrainedCompletely) {
  // The protocol must consume every message it produces (no stragglers that
  // would confuse a following training phase on the same network).
  net::Network network;
  RsaPsiIntersect({1, 2}, {2, 3}, SmallOptions(), &network, nullptr).value();
  EXPECT_EQ(network.PendingFor("guest"), 0u);
  EXPECT_EQ(network.PendingFor("host"), 0u);
}

}  // namespace
}  // namespace flb::fl
