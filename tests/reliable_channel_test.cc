// Tests for message framing (CRC32) and the ack/retransmit channel.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/sim_clock.h"
#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/net/reliable_channel.h"
#include "src/net/serializer.h"

namespace flb::net {
namespace {

constexpr size_t kFrameHeaderBytes = 20;  // magic + crc + seq + len
constexpr size_t kWireFramingBytes = 64;  // Network's per-message overhead

TEST(FrameTest, RoundTrip) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  auto bytes = EncodeFrame(42, payload);
  EXPECT_EQ(bytes.size(), payload.size() + kFrameHeaderBytes);
  auto frame = DecodeFrame(bytes).value();
  EXPECT_EQ(frame.seq, 42u);
  EXPECT_EQ(frame.payload, payload);
  // Empty payloads frame fine too.
  auto empty = DecodeFrame(EncodeFrame(0, {})).value();
  EXPECT_EQ(empty.seq, 0u);
  EXPECT_TRUE(empty.payload.empty());
}

TEST(FrameTest, SingleBitFlipIsDataLoss) {
  // The satellite requirement: flipping any one payload bit must surface
  // as kDataLoss via the CRC32 check.
  const std::vector<uint8_t> payload = {0xDE, 0xAD, 0xBE, 0xEF};
  const auto clean = EncodeFrame(7, payload);
  for (size_t bit = 0; bit < payload.size() * 8; ++bit) {
    auto tampered = clean;
    tampered[kFrameHeaderBytes + bit / 8] ^=
        static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_TRUE(DecodeFrame(tampered).status().IsDataLoss()) << bit;
  }
  // Flipping header bits (seq/len/crc) is detected as well.
  for (size_t byte = 4; byte < kFrameHeaderBytes; ++byte) {
    auto tampered = clean;
    tampered[byte] ^= 0x01;
    EXPECT_TRUE(DecodeFrame(tampered).status().IsDataLoss()) << byte;
  }
}

TEST(FrameTest, TruncationAndGarbageAreDataLoss) {
  const auto clean = EncodeFrame(1, {1, 2, 3});
  for (size_t len = 0; len < clean.size(); ++len) {
    std::vector<uint8_t> cut(clean.begin(), clean.begin() + len);
    EXPECT_TRUE(DecodeFrame(cut).status().IsDataLoss()) << len;
  }
  EXPECT_TRUE(DecodeFrame(std::vector<uint8_t>(32, 0x5A))
                  .status()
                  .IsDataLoss());
}

TEST(Crc32Test, KnownVectorAndSensitivity) {
  // IEEE CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(check.data()),
                  check.size()),
            0xCBF43926u);
  EXPECT_NE(Crc32({1, 2, 3}), Crc32({1, 2, 4}));
  EXPECT_NE(Crc32({1, 2, 3}), Crc32({3, 2, 1}));
}

TEST(ReliableChannelTest, CleanDeliveryAndAccountingParity) {
  // Same payload through a raw network and a channel-routed one (no
  // faults): the channel adds exactly the frame header plus one ack.
  const std::vector<uint8_t> payload(1000, 0xAB);
  SimClock raw_clock, ch_clock;
  Network raw(LinkSpec::GigabitEthernet(), &raw_clock);
  Network routed(LinkSpec::GigabitEthernet(), &ch_clock);
  ReliableChannel channel(&routed);
  routed.set_reliable_channel(&channel);

  ASSERT_TRUE(raw.Send("a", "b", "t", payload).ok());
  ASSERT_TRUE(routed.Send("a", "b", "t", payload).ok());

  const uint64_t ack_wire =
      channel.options().ack_bytes + kWireFramingBytes;
  EXPECT_EQ(routed.stats().bytes,
            raw.stats().bytes + kFrameHeaderBytes + ack_wire);
  // Acks are control traffic: byte-counted but not a message.
  EXPECT_EQ(routed.stats().messages, raw.stats().messages);
  EXPECT_EQ(routed.stats().bytes_by_topic.at("__ack"), ack_wire);
  // Time overhead is exactly the extra bytes' transfer time plus the ack's
  // latency charge.
  const double overhead = ch_clock.Elapsed(CostKind::kNetwork) -
                          raw_clock.Elapsed(CostKind::kNetwork);
  const double expected =
      kFrameHeaderBytes / routed.link().bandwidth_bytes_per_sec +
      routed.TransferSeconds(ack_wire);
  EXPECT_NEAR(overhead, expected, 1e-12);

  // The receiver sees the unframed payload with no retransmissions.
  auto msg = routed.Receive("b", "t").value();
  EXPECT_EQ(msg.payload, payload);
  EXPECT_EQ(channel.stats().sends, 1u);
  EXPECT_EQ(channel.stats().attempts, 1u);
  EXPECT_EQ(channel.stats().retransmits, 0u);
  EXPECT_EQ(channel.stats().acks, 1u);
  EXPECT_EQ(channel.stats().crc_failures, 0u);
}

TEST(ReliableChannelTest, RetransmitsUntilDelivered) {
  SimClock clock;
  Network net(LinkSpec::GigabitEthernet(), &clock);
  auto plan = FaultPlan::Parse("seed=9;drop=0.5").value();
  FaultInjector inj(plan, &clock);
  ReliableChannel channel(&net);
  net.set_fault_injector(&inj);
  net.set_reliable_channel(&channel);

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(net.Send("a", "b", "t", {static_cast<uint8_t>(i)}).ok());
    auto msg = net.Receive("b", "t").value();
    ASSERT_EQ(msg.payload[0], static_cast<uint8_t>(i));
  }
  // At 50% loss, retransmissions definitely happened, and each backoff
  // charged simulated time.
  EXPECT_GT(channel.stats().retransmits, 0u);
  EXPECT_EQ(channel.stats().sends, 50u);
  EXPECT_EQ(channel.stats().acks, 50u);
  EXPECT_GT(inj.stats().drops, 0u);
  EXPECT_GT(clock.Now(), 0.0);
}

TEST(ReliableChannelTest, TotalLossHitsDeadline) {
  SimClock clock;
  Network net(LinkSpec::GigabitEthernet(), &clock);
  auto plan = FaultPlan::Parse("drop=1").value();
  FaultInjector inj(plan, &clock);
  ReliableChannel channel(&net);
  net.set_fault_injector(&inj);
  net.set_reliable_channel(&channel);

  Status status = net.Send("a", "b", "t", {1, 2, 3});
  EXPECT_TRUE(status.IsDeadlineExceeded() || status.IsUnavailable())
      << status.ToString();
  EXPECT_EQ(channel.stats().timeouts, 1u);
  EXPECT_GT(channel.stats().attempts, 1u);
  // The receiver finds nothing and gets a recoverable error, not the raw
  // NotFound.
  EXPECT_TRUE(net.Receive("b", "t").status().IsUnavailable());
}

TEST(ReliableChannelTest, DuplicatesAreSuppressed) {
  Network net;
  auto plan = FaultPlan::Parse("dup=1").value();
  FaultInjector inj(plan);
  ReliableChannel channel(&net);
  net.set_fault_injector(&inj);
  net.set_reliable_channel(&channel);

  ASSERT_TRUE(net.Send("a", "b", "t", {9}).ok());
  EXPECT_EQ(net.PendingFor("b"), 2u);  // two copies on the wire
  EXPECT_EQ(net.Receive("b", "t")->payload, std::vector<uint8_t>{9});
  // The second copy is a replayed sequence number, not a message.
  EXPECT_TRUE(net.Receive("b", "t").status().IsUnavailable());
  EXPECT_EQ(channel.stats().duplicates_suppressed, 1u);
}

TEST(ReliableChannelTest, PersistentCorruptionSurfacesAsDataLoss) {
  SimClock clock;
  Network net(LinkSpec::GigabitEthernet(), &clock);
  auto plan = FaultPlan::Parse("corrupt=1").value();
  FaultInjector inj(plan, &clock);
  ReliableChannel channel(&net);
  net.set_fault_injector(&inj);
  net.set_reliable_channel(&channel);

  // Every attempt is delivered corrupted, so the sender never sees an ack.
  Status status = net.Send("a", "b", "t", {1, 2, 3, 4});
  EXPECT_TRUE(status.IsDeadlineExceeded() || status.IsUnavailable());
  // The receiver CRC-rejects every pending copy: kDataLoss.
  EXPECT_TRUE(net.Receive("b", "t").status().IsDataLoss());
  EXPECT_GT(channel.stats().crc_failures, 0u);
}

TEST(ReliableChannelTest, SequencesArePerLinkAndTopic) {
  Network net;
  ReliableChannel channel(&net);
  net.set_reliable_channel(&channel);
  ASSERT_TRUE(net.Send("a", "b", "t", {1}).ok());
  ASSERT_TRUE(net.Send("a", "b", "t", {2}).ok());
  ASSERT_TRUE(net.Send("a", "c", "t", {3}).ok());
  EXPECT_EQ(net.Receive("b", "t")->payload, std::vector<uint8_t>{1});
  EXPECT_EQ(net.Receive("b", "t")->payload, std::vector<uint8_t>{2});
  EXPECT_EQ(net.Receive("c", "t")->payload, std::vector<uint8_t>{3});
  EXPECT_EQ(channel.stats().duplicates_suppressed, 0u);
}

}  // namespace
}  // namespace flb::net
