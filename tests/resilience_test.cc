// Resilience-layer tests: the simulated-time Deadline, the per-link
// CircuitBreaker state machine, the PartyHealth quarantine policy, the
// FLB_NET_RETRY override surface, and the end-to-end guarantees the layer
// exists for — every trainer terminates within the configured deadline
// under a permanently crashed party (typed error or renormalized partial
// result, never a hang), clean-path accounting is untouched, and same-seed
// chaos runs are bit-identical.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/deadline.h"
#include "src/common/sim_clock.h"
#include "src/core/platform.h"
#include "src/fl/party_health.h"
#include "src/net/circuit_breaker.h"
#include "src/net/reliable_channel.h"

namespace flb {
namespace {

// ---------------------------------------------------------------------------
// common::Deadline
// ---------------------------------------------------------------------------

TEST(DeadlineTest, DefaultIsInfinite) {
  common::Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.Check("test").ok());
  EXPECT_TRUE(std::isinf(d.remaining()));
}

TEST(DeadlineTest, NonPositiveBudgetMeansUnbounded) {
  SimClock clock;
  EXPECT_TRUE(common::Deadline::After(&clock, 0).infinite());
  EXPECT_TRUE(common::Deadline::After(&clock, -1).infinite());
  EXPECT_TRUE(common::Deadline::After(nullptr, 5).infinite());
}

TEST(DeadlineTest, ExpiresOnSimulatedTime) {
  SimClock clock;
  clock.Charge(CostKind::kOther, 1.0);
  const common::Deadline d = common::Deadline::After(&clock, 2.0);
  EXPECT_FALSE(d.infinite());
  EXPECT_DOUBLE_EQ(d.expires_at(), 3.0);
  EXPECT_DOUBLE_EQ(d.remaining(), 2.0);
  EXPECT_TRUE(d.Check("early").ok());

  clock.Charge(CostKind::kOther, 1.5);
  EXPECT_FALSE(d.expired());
  EXPECT_DOUBLE_EQ(d.remaining(), 0.5);

  clock.Charge(CostKind::kOther, 1.0);
  EXPECT_TRUE(d.expired());
  EXPECT_DOUBLE_EQ(d.remaining(), 0.0);
  const Status late = d.Check("late");
  EXPECT_TRUE(late.IsDeadlineExceeded()) << late.ToString();
  EXPECT_NE(late.ToString().find("late"), std::string::npos);
}

// ---------------------------------------------------------------------------
// net::CircuitBreaker
// ---------------------------------------------------------------------------

net::BreakerOptions TestBreakerOptions() {
  net::BreakerOptions opts;
  opts.failure_threshold = 3;
  opts.open_sec = 0.1;
  opts.backoff = 2.0;
  opts.max_open_sec = 1.0;
  opts.jitter_frac = 0.1;
  opts.seed = 42;
  return opts;
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndFailsFast) {
  SimClock clock;
  net::CircuitBreaker breaker(TestBreakerOptions(), &clock);
  EXPECT_TRUE(breaker.AllowSend("a", "b"));
  breaker.RecordFailure("a", "b");
  breaker.RecordFailure("a", "b");
  EXPECT_EQ(breaker.StateOf("a", "b"), net::BreakerState::kClosed);
  breaker.RecordFailure("a", "b");  // third consecutive failure trips
  EXPECT_EQ(breaker.StateOf("a", "b"), net::BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowSend("a", "b"));
  EXPECT_FALSE(breaker.AllowSend("a", "b"));
  EXPECT_EQ(breaker.stats().trips, 1u);
  EXPECT_EQ(breaker.stats().fast_fails, 2u);
  EXPECT_EQ(breaker.OpenCount(), 1u);
  // The breaker is per directed link: the reverse direction is untouched.
  EXPECT_TRUE(breaker.AllowSend("b", "a"));
  EXPECT_EQ(breaker.StateOf("b", "a"), net::BreakerState::kClosed);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveFailures) {
  SimClock clock;
  net::CircuitBreaker breaker(TestBreakerOptions(), &clock);
  breaker.RecordFailure("a", "b");
  breaker.RecordFailure("a", "b");
  breaker.RecordSuccess("a", "b");
  breaker.RecordFailure("a", "b");
  breaker.RecordFailure("a", "b");
  EXPECT_EQ(breaker.StateOf("a", "b"), net::BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().trips, 0u);
}

TEST(CircuitBreakerTest, ProbeAfterOpenWindowClosesOnSuccess) {
  SimClock clock;
  const net::BreakerOptions opts = TestBreakerOptions();
  net::CircuitBreaker breaker(opts, &clock);
  for (int i = 0; i < opts.failure_threshold; ++i) {
    breaker.RecordFailure("a", "b");
  }
  ASSERT_EQ(breaker.StateOf("a", "b"), net::BreakerState::kOpen);
  // Past the worst-case jittered window the link must admit one probe.
  clock.Charge(CostKind::kOther, opts.open_sec * (1.0 + opts.jitter_frac));
  EXPECT_TRUE(breaker.AllowSend("a", "b"));
  EXPECT_EQ(breaker.StateOf("a", "b"), net::BreakerState::kHalfOpen);
  breaker.RecordSuccess("a", "b");
  EXPECT_EQ(breaker.StateOf("a", "b"), net::BreakerState::kClosed);
  EXPECT_TRUE(breaker.AllowSend("a", "b"));
  EXPECT_EQ(breaker.stats().probes, 1u);
  EXPECT_EQ(breaker.stats().closes, 1u);
}

TEST(CircuitBreakerTest, ProbeFailureReopensWithDeeperWindow) {
  SimClock clock;
  const net::BreakerOptions opts = TestBreakerOptions();
  net::CircuitBreaker breaker(opts, &clock);
  for (int i = 0; i < opts.failure_threshold; ++i) {
    breaker.RecordFailure("a", "b");
  }
  clock.Charge(CostKind::kOther, opts.open_sec * (1.0 + opts.jitter_frac));
  ASSERT_TRUE(breaker.AllowSend("a", "b"));  // probe admitted
  breaker.RecordFailure("a", "b");           // probe failed
  EXPECT_EQ(breaker.StateOf("a", "b"), net::BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 2u);
  // The second window is backed off: just past one base window the link is
  // still open even at maximum negative jitter.
  clock.Charge(CostKind::kOther, opts.open_sec * (1.0 + opts.jitter_frac));
  EXPECT_FALSE(breaker.AllowSend("a", "b"));
  // Past the doubled worst-case window a probe is admitted again.
  clock.Charge(CostKind::kOther,
               opts.open_sec * opts.backoff * (1.0 + opts.jitter_frac));
  EXPECT_TRUE(breaker.AllowSend("a", "b"));
}

TEST(CircuitBreakerTest, JitterIsDeterministicPerSeed) {
  // Two breakers with the same seed walk the same transition timeline;
  // tested by stepping both clocks in lockstep and comparing the first
  // step at which the probe is admitted.
  auto first_probe_step = [](uint64_t seed) {
    SimClock clock;
    net::BreakerOptions opts = TestBreakerOptions();
    opts.seed = seed;
    net::CircuitBreaker breaker(opts, &clock);
    for (int i = 0; i < opts.failure_threshold; ++i) {
      breaker.RecordFailure("a", "b");
    }
    for (int step = 0; step < 200; ++step) {
      clock.Charge(CostKind::kOther, 0.001);
      if (breaker.AllowSend("a", "b")) return step;
    }
    return -1;
  };
  const int a = first_probe_step(42);
  EXPECT_EQ(a, first_probe_step(42));
  EXPECT_NE(a, -1);
}

// ---------------------------------------------------------------------------
// fl::PartyHealth
// ---------------------------------------------------------------------------

TEST(PartyHealthTest, DisabledByDefault) {
  SimClock clock;
  fl::PartyHealth health(fl::PartyHealthOptions{}, &clock);
  EXPECT_FALSE(health.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(health.RecordFailure("p"));
  }
  EXPECT_FALSE(health.Quarantined("p"));
  EXPECT_EQ(health.quarantines(), 0u);
}

fl::PartyHealthOptions TestHealthOptions() {
  fl::PartyHealthOptions opts;
  opts.ewma_alpha = 0.5;
  opts.failure_threshold = 0.5;
  opts.quarantine_sec = 1.0;
  opts.backoff = 2.0;
  opts.max_quarantine_sec = 10.0;
  return opts;
}

TEST(PartyHealthTest, QuarantinesReadmitsAndBacksOff) {
  SimClock clock;
  fl::PartyHealth health(TestHealthOptions(), &clock);
  ASSERT_TRUE(health.enabled());

  // A first observation seeds the EWMA directly, so start the party with a
  // success (EWMA 0.0): one failure then reads 0.5 — at, not above, the
  // threshold — and the second (0.75) quarantines.
  health.RecordSuccess("p", 0.01);
  EXPECT_FALSE(health.RecordFailure("p"));
  EXPECT_TRUE(health.RecordFailure("p"));
  EXPECT_TRUE(health.Quarantined("p"));
  EXPECT_EQ(health.quarantines(), 1u);
  EXPECT_EQ(health.QuarantinedCount(), 1u);
  EXPECT_GT(health.FailureRate("p"), 0.5);

  // Crossing the window boundary readmits the party on probation.
  clock.Charge(CostKind::kOther, 1.5);
  EXPECT_FALSE(health.Quarantined("p"));
  EXPECT_EQ(health.readmits(), 1u);
  EXPECT_EQ(health.QuarantinedCount(), 0u);

  // A failure on probation re-quarantines immediately with a deeper
  // window (1.0 * backoff = 2.0 simulated seconds).
  EXPECT_TRUE(health.RecordFailure("p"));
  EXPECT_EQ(health.quarantines(), 2u);
  clock.Charge(CostKind::kOther, 1.5);
  EXPECT_TRUE(health.Quarantined("p"));  // 1.5 < 2.0: still inside
  clock.Charge(CostKind::kOther, 1.0);
  EXPECT_FALSE(health.Quarantined("p"));
  EXPECT_EQ(health.readmits(), 2u);

  // Sustained successes on probation decay the EWMA back to healthy.
  for (int i = 0; i < 8; ++i) health.RecordSuccess("p", 0.01);
  EXPECT_LT(health.FailureRate("p"), 0.25);
  EXPECT_FALSE(health.Quarantined("p"));
}

TEST(PartyHealthTest, PartiesAreTrackedIndependently) {
  SimClock clock;
  fl::PartyHealth health(TestHealthOptions(), &clock);
  // A party whose very first observation is a failure seeds the EWMA at
  // 1.0 and quarantines immediately.
  EXPECT_TRUE(health.RecordFailure("bad"));
  health.RecordSuccess("good", 0.02);
  EXPECT_TRUE(health.Quarantined("bad"));
  EXPECT_FALSE(health.Quarantined("good"));
  EXPECT_DOUBLE_EQ(health.FailureRate("good"), 0.0);
  EXPECT_DOUBLE_EQ(health.ResponseEwma("good"), 0.02);  // seeded directly
}

// ---------------------------------------------------------------------------
// FLB_NET_RETRY override surface
// ---------------------------------------------------------------------------

class NetRetryEnvTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("FLB_NET_RETRY"); }
};

TEST_F(NetRetryEnvTest, UnsetKeepsBaseOptions) {
  unsetenv("FLB_NET_RETRY");
  net::ReliableOptions base;
  base.max_attempts = 6;
  const auto opts = net::ReliableOptions::FromEnv(base);
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(opts->max_attempts, 6);
}

TEST_F(NetRetryEnvTest, OverridesSelectedKeys) {
  setenv("FLB_NET_RETRY", "max_attempts=4,rto=0.02,jitter=0.2,seed=9", 1);
  net::ReliableOptions base;
  const auto opts = net::ReliableOptions::FromEnv(base);
  ASSERT_TRUE(opts.ok()) << opts.status().ToString();
  EXPECT_EQ(opts->max_attempts, 4);
  EXPECT_DOUBLE_EQ(opts->initial_rto_sec, 0.02);
  EXPECT_DOUBLE_EQ(opts->jitter_frac, 0.2);
  EXPECT_EQ(opts->jitter_seed, 9u);
  // Untouched keys keep their base values.
  EXPECT_DOUBLE_EQ(opts->deadline_sec, base.deadline_sec);
}

TEST_F(NetRetryEnvTest, RejectsUnknownKeysAndBadValues) {
  setenv("FLB_NET_RETRY", "bogus=1", 1);
  EXPECT_FALSE(net::ReliableOptions::FromEnv({}).ok());
  setenv("FLB_NET_RETRY", "max_attempts=zero", 1);
  EXPECT_FALSE(net::ReliableOptions::FromEnv({}).ok());
  setenv("FLB_NET_RETRY", "max_attempts=0", 1);
  EXPECT_FALSE(net::ReliableOptions::FromEnv({}).ok());
  setenv("FLB_NET_RETRY", "jitter=2", 1);
  EXPECT_FALSE(net::ReliableOptions::FromEnv({}).ok());
}

// ---------------------------------------------------------------------------
// End-to-end: termination, degradation, determinism
// ---------------------------------------------------------------------------

core::PlatformConfig SmallConfig(core::FlModelKind model) {
  core::PlatformConfig cfg;
  cfg.engine = core::EngineKind::kFlBooster;
  cfg.model = model;
  cfg.dataset = fl::DatasetSpec{fl::DatasetKind::kSynthetic, 128, 8, 8, 5};
  cfg.num_parties = 3;
  cfg.key_bits = 256;
  cfg.r_bits = 14;
  cfg.modeled = true;
  cfg.train.max_epochs = 2;
  cfg.train.batch_size = 32;
  cfg.train.tolerance = 1e-9;
  return cfg;
}

// The critical party whose permanent crash cannot be aggregated around.
std::string CriticalParty(core::FlModelKind model) {
  switch (model) {
    case core::FlModelKind::kHomoLr:
    case core::FlModelKind::kHomoNn:
      return "server";
    default:
      return "guest";
  }
}

TEST(ResilienceEndToEndTest, PermanentCriticalCrashTerminatesTyped) {
  // The acceptance scenario: with a critical party dead from t=0 and a
  // run-wide deadline, every trainer must terminate with a typed error —
  // kUnavailable (resume found a permanent crash) or kDeadlineExceeded
  // (the budget ran out first) — never a hang past the deadline.
  const core::FlModelKind kModels[] = {
      core::FlModelKind::kHomoLr, core::FlModelKind::kHomoNn,
      core::FlModelKind::kHeteroLr, core::FlModelKind::kHeteroSbt,
      core::FlModelKind::kHeteroNn};
  for (const auto model : kModels) {
    auto cfg = SmallConfig(model);
    cfg.fault_plan = "seed=3;crash=" + CriticalParty(model) + "@0";
    cfg.reliable.deadline_sec = 0.01;
    cfg.reliable.max_attempts = 2;
    cfg.run_deadline_sec = 60.0;  // simulated seconds, generous
    const auto report = core::Platform::Run(cfg);
    ASSERT_FALSE(report.ok()) << core::ModelName(model);
    EXPECT_TRUE(report.status().IsUnavailable() ||
                report.status().IsDeadlineExceeded())
        << core::ModelName(model) << ": " << report.status().ToString();
  }
}

TEST(ResilienceEndToEndTest, TinyRunDeadlineIsTypedForAllModels) {
  // Even on a healthy network, an absurdly small run deadline must surface
  // as typed kDeadlineExceeded from the round-boundary checks — the
  // deadline path works without any fault plan attached.
  const core::FlModelKind kModels[] = {
      core::FlModelKind::kHomoLr, core::FlModelKind::kHomoNn,
      core::FlModelKind::kHeteroLr, core::FlModelKind::kHeteroSbt,
      core::FlModelKind::kHeteroNn};
  for (const auto model : kModels) {
    auto cfg = SmallConfig(model);
    cfg.run_deadline_sec = 1e-9;
    const auto report = core::Platform::Run(cfg);
    ASSERT_FALSE(report.ok()) << core::ModelName(model);
    EXPECT_TRUE(report.status().IsDeadlineExceeded())
        << core::ModelName(model) << ": " << report.status().ToString();
  }
}

TEST(ResilienceEndToEndTest, HostCrashDegradesHeteroLrGracefully) {
  // A non-critical host dying permanently mid-run is aggregated around:
  // the guest folds the surviving hosts' shares and renormalizes, the run
  // completes, and the degradation is visible in the counters.
  auto cfg = SmallConfig(core::FlModelKind::kHeteroLr);
  cfg.fault_plan = "seed=11;crash=host1@0";
  cfg.reliable.deadline_sec = 0.05;
  cfg.reliable.max_attempts = 2;
  cfg.run_deadline_sec = 120.0;
  const auto report = core::Platform::Run(cfg);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->train.epochs.size(), 2u);
  EXPECT_GT(report->robustness.partial_rounds, 0u);
}

TEST(ResilienceEndToEndTest, HostCrashDegradesSbtGracefully) {
  // SBT excludes a dead host from the tree: its features yield no split
  // candidates, the remaining shards still grow a usable tree.
  auto cfg = SmallConfig(core::FlModelKind::kHeteroSbt);
  cfg.fault_plan = "seed=11;crash=host1@0";
  cfg.reliable.deadline_sec = 0.05;
  cfg.reliable.max_attempts = 2;
  cfg.run_deadline_sec = 120.0;
  const auto report = core::Platform::Run(cfg);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->train.epochs.size(), 2u);
  EXPECT_GT(report->robustness.partial_rounds, 0u);
}

TEST(ResilienceEndToEndTest, StragglerQuarantineEngagesAndReadmits) {
  // A persistent straggler past the upload deadline fails every exchange;
  // with the health policy on, it is quarantined, skipped, readmitted on
  // probation, and re-quarantined when it keeps straggling.
  auto cfg = SmallConfig(core::FlModelKind::kHomoLr);
  cfg.num_parties = 4;
  cfg.train.max_epochs = 4;
  cfg.train.straggler_deadline_factor = 2.0;
  // Window sized against the ~4ms simulated round spacing of this config
  // so the run sees skips (inside the window) AND a readmission (past it).
  cfg.train.health_quarantine_sec = 0.02;
  cfg.train.health_quarantine_backoff = 1.0;
  cfg.train.health_failure_threshold = 0.4;
  cfg.train.health_ewma_alpha = 0.5;
  cfg.fault_plan = "seed=5;straggler=party1:8";
  const auto report = core::Platform::Run(cfg);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->robustness.quarantines, 1u);
  EXPECT_GE(report->robustness.quarantine_skips, 1u);
  EXPECT_GE(report->robustness.readmits, 1u);
  EXPECT_EQ(report->train.epochs.size(), 4u);
}

TEST(ResilienceEndToEndTest, SameSeedChaosRunsAreBitIdentical) {
  // One stormy hetero run, executed twice: weights, timeline, and every
  // resilience counter must match bit-for-bit.
  auto run = [] {
    auto cfg = SmallConfig(core::FlModelKind::kHeteroLr);
    cfg.fault_plan = "seed=7;drop=0.15;crash=host1@0.5-2.0";
    cfg.reliable.deadline_sec = 0.05;
    cfg.reliable.max_attempts = 3;
    cfg.run_deadline_sec = 240.0;
    return core::Platform::Run(cfg);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->total_seconds, b->total_seconds);  // exact, not approximate
  EXPECT_EQ(a->train.final_loss, b->train.final_loss);
  EXPECT_EQ(a->train.final_accuracy, b->train.final_accuracy);
  EXPECT_EQ(a->comm_bytes, b->comm_bytes);
  EXPECT_EQ(a->robustness.transport_dropouts, b->robustness.transport_dropouts);
  EXPECT_EQ(a->robustness.partial_rounds, b->robustness.partial_rounds);
  EXPECT_EQ(a->robustness.quarantines, b->robustness.quarantines);
  EXPECT_EQ(a->robustness.deadline_exceeded, b->robustness.deadline_exceeded);
  EXPECT_EQ(a->breaker_stats.trips, b->breaker_stats.trips);
  EXPECT_EQ(a->breaker_stats.fast_fails, b->breaker_stats.fast_fails);
  EXPECT_EQ(a->channel_stats.retransmits, b->channel_stats.retransmits);
}

TEST(ResilienceEndToEndTest, CleanPathIsUntouchedByResilienceWiring) {
  // A healthy run with a (generous) run deadline configured must produce
  // byte-identical results to one without: every deadline check is a
  // no-op-or-compare, the breaker never engages, health never observes a
  // failure.
  auto run = [](double run_deadline_sec) {
    auto cfg = SmallConfig(core::FlModelKind::kHomoLr);
    cfg.run_deadline_sec = run_deadline_sec;
    return core::Platform::Run(cfg).value();
  };
  const auto without = run(0);
  const auto with = run(1e9);
  EXPECT_EQ(without.total_seconds, with.total_seconds);
  EXPECT_EQ(without.train.final_loss, with.train.final_loss);
  EXPECT_EQ(without.comm_bytes, with.comm_bytes);
  EXPECT_EQ(with.breaker_stats.trips, 0u);
  EXPECT_EQ(with.breaker_stats.fast_fails, 0u);
  EXPECT_EQ(with.robustness.quarantines, 0u);
  EXPECT_EQ(with.robustness.deadline_exceeded, 0u);
}

}  // namespace
}  // namespace flb
