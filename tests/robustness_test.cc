// Failure-injection and robustness tests: corrupted wire payloads, tampered
// ciphertexts, adversarial deserializer inputs, and protocol misuse must
// produce Status errors (or garbage values), never crashes or hangs.

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "src/codec/quantizer.h"
#include "src/common/rng.h"
#include "src/core/transport.h"
#include "src/crypto/paillier.h"
#include "src/gpusim/device.h"
#include "src/net/serializer.h"

namespace flb {
namespace {

TEST(RobustnessTest, DeserializerSurvivesRandomBytes) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t len = rng.NextBelow(64);
    std::vector<uint8_t> junk(len);
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextU32());
    net::Deserializer d(junk);
    // Whatever sequence of reads we attempt, we get values or errors.
    (void)d.GetU32();
    (void)d.GetString();
    (void)d.GetBigInt();
    (void)d.GetDoubleVector();
    (void)d.GetBigIntBatchFixed(8);
  }
}

TEST(RobustnessTest, RecvEncVecSurvivesRandomPayloads) {
  Rng rng(2);
  net::Network network;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> junk(rng.NextBelow(200));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextU32());
    ASSERT_TRUE(network.Send("x", "y", "t", junk).ok());
    auto result = core::RecvEncVec(&network, "y", "t");
    // Malformed payloads must fail cleanly (a short random blob can parse
    // as an empty vector by chance, which is also fine).
    if (result.ok()) {
      EXPECT_LE(result->data.size(), junk.size());
    }
  }
}

TEST(RobustnessTest, TamperedCiphertextDecryptsToGarbageNotCrash) {
  Rng rng(3);
  auto keys = crypto::PaillierKeyGen(256, rng).value();
  auto ctx = crypto::PaillierContext::Create(keys).value();
  const mpint::BigInt m(123456);
  mpint::BigInt c = ctx.Encrypt(m, rng).value();
  // Flip a low bit of the ciphertext.
  mpint::BigInt tampered = c.IsOdd() ? mpint::BigInt::Sub(c, mpint::BigInt(1))
                                     : mpint::BigInt::Add(c, mpint::BigInt(1));
  auto result = ctx.Decrypt(tampered);
  ASSERT_TRUE(result.ok());       // decryption "succeeds"...
  EXPECT_NE(result.value(), m);   // ...but integrity is gone (HE is malleable)
}

TEST(RobustnessTest, DecryptRandomRingElementIsSafe) {
  Rng rng(4);
  auto keys = crypto::PaillierKeyGen(256, rng).value();
  auto ctx = crypto::PaillierContext::Create(keys).value();
  for (int i = 0; i < 10; ++i) {
    mpint::BigInt junk =
        mpint::BigInt::RandomBelow(rng, keys.pub.n_squared);
    auto result = ctx.Decrypt(junk);
    if (result.ok()) {
      EXPECT_LT(result.value(), keys.pub.n);
    }
  }
}

TEST(RobustnessTest, HeServiceRejectsForeignEncVecMode) {
  SimClock clock;
  auto device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), &clock);
  core::HeServiceOptions opts;
  opts.engine = core::EngineKind::kFlBooster;
  opts.key_bits = 256;
  opts.r_bits = 14;
  auto real = core::HeService::Create(opts, &clock, device).value();
  opts.modeled = true;
  auto modeled = core::HeService::Create(opts, &clock, device).value();
  auto enc = modeled->EncryptValues({0.5}).value();
  // A modeled EncVec handed to a real service is a protocol bug -> error.
  EXPECT_TRUE(real->DecryptValues(enc).status().IsInvalidArgument());
  EXPECT_TRUE(real->AddCipher(enc, enc).status().IsInvalidArgument());
}

TEST(RobustnessTest, NetworkIsolatesParties) {
  net::Network network;
  ASSERT_TRUE(network.Send("a", "b", "secret", {1, 2, 3}).ok());
  // A third party cannot receive b's message.
  EXPECT_TRUE(network.Receive("c", "secret").status().IsNotFound());
  EXPECT_EQ(network.PendingFor("b"), 1u);
}

TEST(RobustnessTest, QuantizerSaturatesGracefullyOnExtremes) {
  codec::QuantizerConfig cfg;
  cfg.alpha = 1.0;
  cfg.r_bits = 16;
  auto q = codec::Quantizer::Create(cfg).value();
  EXPECT_EQ(q.Encode(1e308).value(), q.Encode(1.0).value());
  EXPECT_EQ(q.Encode(-1e308).value(), q.Encode(-1.0).value());
  EXPECT_FALSE(q.Encode(std::numeric_limits<double>::infinity()).ok());
}

}  // namespace
}  // namespace flb
