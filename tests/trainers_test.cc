// End-to-end federated training tests: each of the four models trains with
// real (small-key) Paillier and with the modeled engine, converging on the
// synthetic datasets and agreeing across execution modes.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/he_service.h"
#include "src/core/platform.h"
#include "src/fl/hetero_lr.h"
#include "src/fl/hetero_nn.h"
#include "src/fl/hetero_sbt.h"
#include "src/fl/homo_lr.h"
#include "src/fl/partition.h"

namespace flb {
namespace {

using core::EngineKind;
using core::HeService;
using core::HeServiceOptions;

struct Harness {
  SimClock clock;
  std::shared_ptr<gpusim::Device> device;
  net::Network network{net::LinkSpec::GigabitEthernet(), &clock};
  std::unique_ptr<HeService> he;

  fl::FlSession session() {
    return fl::FlSession{he.get(), &network, &clock};
  }
};

std::unique_ptr<Harness> MakeHarness(EngineKind engine, int parties,
                                     bool modeled, int key_bits = 256) {
  auto h = std::make_unique<Harness>();
  h->device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), &h->clock,
      core::TraitsFor(engine).branch_combining);
  HeServiceOptions opts;
  opts.engine = engine;
  opts.key_bits = key_bits;
  opts.r_bits = 14;
  opts.participants = parties;
  opts.frac_bits = 16;
  opts.fp_compress_slot_bits = 40;
  opts.modeled = modeled;
  auto he = HeService::Create(opts, &h->clock, h->device);
  EXPECT_TRUE(he.ok()) << he.status().ToString();
  h->he = std::move(he).value();
  return h;
}

fl::Dataset SmallDataset(fl::DatasetKind kind, size_t rows, size_t cols) {
  fl::DatasetSpec spec;
  spec.kind = kind;
  spec.rows = rows;
  spec.cols = cols;
  spec.nnz_per_row = std::min<size_t>(cols, kind == fl::DatasetKind::kSynthetic
                                                ? cols
                                                : cols / 4);
  return fl::GenerateDataset(spec).value();
}

fl::TrainConfig QuickConfig(int epochs, int batch) {
  fl::TrainConfig cfg;
  cfg.max_epochs = epochs;
  cfg.batch_size = batch;
  cfg.learning_rate = 0.1;
  cfg.tolerance = 1e-9;  // do not stop early in tests
  return cfg;
}

// ---------------------------------------------------------------------------
// Homo LR
// ---------------------------------------------------------------------------

TEST(HomoLrTest, LossDecreasesWithRealHe) {
  auto h = MakeHarness(EngineKind::kFlBooster, 3, /*modeled=*/false);
  auto ds = SmallDataset(fl::DatasetKind::kSynthetic, 120, 12);
  auto shards = fl::HorizontalSplit(ds, 3).value();
  fl::HomoLrTrainer trainer(shards, h->session(), QuickConfig(4, 64));
  auto result = trainer.Train().value();
  ASSERT_EQ(result.epochs.size(), 4u);
  EXPECT_LT(result.final_loss, result.epochs.front().loss);
  EXPECT_LT(result.final_loss, 0.69);  // better than chance
  EXPECT_GT(result.final_accuracy, 0.6);
  // Component accounting present.
  EXPECT_GT(result.epochs[0].he_seconds, 0.0);
  EXPECT_GT(result.epochs[0].comm_seconds, 0.0);
  EXPECT_GT(result.epochs[0].comm_bytes, 0u);
}

TEST(HomoLrTest, ModeledMatchesRealLossTrajectory) {
  auto ds = SmallDataset(fl::DatasetKind::kSynthetic, 90, 10);
  auto shards = fl::HorizontalSplit(ds, 3).value();

  auto real = MakeHarness(EngineKind::kFlBooster, 3, false);
  fl::HomoLrTrainer rt(shards, real->session(), QuickConfig(3, 64));
  auto rres = rt.Train().value();

  auto modeled = MakeHarness(EngineKind::kFlBooster, 3, true);
  fl::HomoLrTrainer mt(shards, modeled->session(), QuickConfig(3, 64));
  auto mres = mt.Train().value();

  ASSERT_EQ(rres.epochs.size(), mres.epochs.size());
  for (size_t e = 0; e < rres.epochs.size(); ++e) {
    // Identical quantization + identical arithmetic: the trajectories match
    // to double-rounding noise.
    EXPECT_NEAR(rres.epochs[e].loss, mres.epochs[e].loss, 1e-9) << e;
  }
  // And the simulated epoch time agrees between modes.
  EXPECT_NEAR(mres.TotalSimSeconds(), rres.TotalSimSeconds(),
              0.25 * rres.TotalSimSeconds());
}

TEST(HomoLrTest, EnginesAgreeOnValuesDifferOnTime) {
  // Modeled execution at the paper's 1024-bit key size with a wide enough
  // gradient that HE and communication dominate the fixed per-message
  // latency.
  auto ds = SmallDataset(fl::DatasetKind::kSynthetic, 90, 300);
  auto shards = fl::HorizontalSplit(ds, 3).value();

  auto fate = MakeHarness(EngineKind::kFate, 3, true, 1024);
  fl::HomoLrTrainer ft(shards, fate->session(), QuickConfig(2, 64));
  auto fres = ft.Train().value();

  auto booster = MakeHarness(EngineKind::kFlBooster, 3, true, 1024);
  fl::HomoLrTrainer bt(shards, booster->session(), QuickConfig(2, 64));
  auto bres = bt.Train().value();

  EXPECT_NEAR(fres.final_loss, bres.final_loss, 1e-6);
  // FLBooster is dramatically faster per epoch.
  EXPECT_LT(10 * bres.TotalSimSeconds(), fres.TotalSimSeconds());
  // And moves far fewer bytes (batch compression).
  EXPECT_LT(5 * bres.epochs[0].comm_bytes, fres.epochs[0].comm_bytes);
}

// ---------------------------------------------------------------------------
// Hetero LR
// ---------------------------------------------------------------------------

TEST(HeteroLrTest, LossDecreasesWithRealHe) {
  auto h = MakeHarness(EngineKind::kFlBooster, 3, false);
  auto ds = SmallDataset(fl::DatasetKind::kSynthetic, 120, 15);
  auto part = fl::VerticalSplit(ds, 3).value();
  fl::HeteroLrTrainer trainer(part, h->session(), QuickConfig(4, 64));
  auto result = trainer.Train().value();
  EXPECT_LT(result.final_loss, result.epochs.front().loss);
  EXPECT_LT(result.final_loss, 0.69);
  // All three parties trained weights.
  EXPECT_EQ(trainer.weights().size(), 3u);
}

TEST(HeteroLrTest, SinglePartyDegeneratesToLocal) {
  auto h = MakeHarness(EngineKind::kFlBooster, 1, false);
  auto ds = SmallDataset(fl::DatasetKind::kSynthetic, 80, 8);
  auto part = fl::VerticalSplit(ds, 1).value();
  fl::HeteroLrTrainer trainer(part, h->session(), QuickConfig(3, 40));
  auto result = trainer.Train().value();
  EXPECT_LT(result.final_loss, result.epochs.front().loss);
}

// ---------------------------------------------------------------------------
// Hetero SBT
// ---------------------------------------------------------------------------

TEST(HeteroSbtTest, BoostingReducesLossRealHe) {
  auto h = MakeHarness(EngineKind::kFlBooster, 2, false);
  auto ds = SmallDataset(fl::DatasetKind::kSynthetic, 80, 8);
  auto part = fl::VerticalSplit(ds, 2).value();
  fl::TrainConfig cfg = QuickConfig(3, 80);
  cfg.learning_rate = 0.5;
  fl::SbtParams params;
  params.max_depth = 3;
  params.num_bins = 8;
  fl::HeteroSbtTrainer trainer(part, h->session(), cfg, params);
  auto result = trainer.Train().value();
  ASSERT_EQ(trainer.trees().size(), result.epochs.size());
  EXPECT_LT(result.final_loss, result.epochs.front().loss + 1e-12);
  EXPECT_LT(result.final_loss, 0.69);
  // Trees actually split, and host features participate.
  bool any_split = false, any_host_split = false;
  for (const auto& tree : trainer.trees()) {
    for (const auto& node : tree.nodes) {
      if (!node.is_leaf) {
        any_split = true;
        if (node.split_party != 0) any_host_split = true;
      }
    }
  }
  EXPECT_TRUE(any_split);
  EXPECT_TRUE(any_host_split);
}

TEST(HeteroSbtTest, ModeledMatchesRealTrees) {
  auto ds = SmallDataset(fl::DatasetKind::kRcv1, 60, 12);
  auto part = fl::VerticalSplit(ds, 2).value();
  fl::TrainConfig cfg = QuickConfig(2, 60);
  cfg.learning_rate = 0.5;
  fl::SbtParams params;
  params.max_depth = 2;
  params.num_bins = 4;

  auto real = MakeHarness(EngineKind::kFlBooster, 2, false);
  fl::HeteroSbtTrainer rt(part, real->session(), cfg, params);
  auto rres = rt.Train().value();

  auto modeled = MakeHarness(EngineKind::kFlBooster, 2, true);
  fl::HeteroSbtTrainer mt(part, modeled->session(), cfg, params);
  auto mres = mt.Train().value();

  ASSERT_EQ(rt.trees().size(), mt.trees().size());
  for (size_t t = 0; t < rt.trees().size(); ++t) {
    ASSERT_EQ(rt.trees()[t].nodes.size(), mt.trees()[t].nodes.size());
    for (size_t n = 0; n < rt.trees()[t].nodes.size(); ++n) {
      const auto& rn = rt.trees()[t].nodes[n];
      const auto& mn = mt.trees()[t].nodes[n];
      EXPECT_EQ(rn.is_leaf, mn.is_leaf);
      EXPECT_EQ(rn.split_party, mn.split_party);
      EXPECT_EQ(rn.split_feature, mn.split_feature);
      EXPECT_NEAR(rn.leaf_weight, mn.leaf_weight, 1e-6);
    }
  }
  EXPECT_NEAR(rres.final_loss, mres.final_loss, 1e-6);
}

// ---------------------------------------------------------------------------
// Hetero NN
// ---------------------------------------------------------------------------

TEST(HeteroNnTest, LossDecreasesWithRealHe) {
  auto h = MakeHarness(EngineKind::kFlBooster, 2, false);
  auto ds = SmallDataset(fl::DatasetKind::kSynthetic, 60, 10);
  auto part = fl::VerticalSplit(ds, 2).value();
  fl::TrainConfig cfg = QuickConfig(5, 30);
  cfg.learning_rate = 0.5;
  fl::NnParams params;
  params.bottom_dim = 4;
  params.interactive_dim = 4;
  fl::HeteroNnTrainer trainer(part, h->session(), cfg, params);
  auto result = trainer.Train().value();
  EXPECT_LT(result.final_loss, result.epochs.front().loss);
  EXPECT_GT(result.epochs[0].he_seconds, 0.0);
}

TEST(HeteroNnTest, ModeledMatchesReal) {
  auto ds = SmallDataset(fl::DatasetKind::kSynthetic, 40, 8);
  auto part = fl::VerticalSplit(ds, 2).value();
  fl::TrainConfig cfg = QuickConfig(2, 20);
  fl::NnParams params;
  params.bottom_dim = 3;
  params.interactive_dim = 3;

  auto real = MakeHarness(EngineKind::kFlBooster, 2, false);
  fl::HeteroNnTrainer rt(part, real->session(), cfg, params);
  auto rres = rt.Train().value();
  auto modeled = MakeHarness(EngineKind::kFlBooster, 2, true);
  fl::HeteroNnTrainer mt(part, modeled->session(), cfg, params);
  auto mres = mt.Train().value();
  // Fixed-point quantization is identical in both modes.
  EXPECT_NEAR(rres.final_loss, mres.final_loss, 1e-6);
}

// ---------------------------------------------------------------------------
// Platform facade
// ---------------------------------------------------------------------------

TEST(PlatformTest, RunsEveryModelModeled) {
  for (auto model :
       {core::FlModelKind::kHomoLr, core::FlModelKind::kHeteroLr,
        core::FlModelKind::kHeteroSbt, core::FlModelKind::kHeteroNn}) {
    core::PlatformConfig cfg;
    cfg.engine = EngineKind::kFlBooster;
    cfg.model = model;
    cfg.dataset =
        fl::DatasetSpec{fl::DatasetKind::kSynthetic, 64, 16, 16, 5};
    cfg.num_parties = 2;
    cfg.key_bits = 1024;
    cfg.modeled = true;
    cfg.train.max_epochs = 1;
    cfg.train.batch_size = 32;
    cfg.sbt.num_bins = 4;
    cfg.sbt.max_depth = 2;
    cfg.nn.bottom_dim = 3;
    cfg.nn.interactive_dim = 3;
    auto report = core::Platform::Run(cfg);
    ASSERT_TRUE(report.ok()) << core::ModelName(model) << ": "
                             << report.status().ToString();
    EXPECT_GT(report->total_seconds, 0.0) << core::ModelName(model);
    EXPECT_GT(report->he_seconds, 0.0) << core::ModelName(model);
    EXPECT_GT(report->comm_bytes, 0u) << core::ModelName(model);
    EXPECT_GT(report->he_ops.encrypts, 0u) << core::ModelName(model);
    EXPECT_GT(report->sm_utilization, 0.0) << core::ModelName(model);
  }
}

TEST(PlatformTest, EngineOrderingHoldsAtScale) {
  // FATE slower than HAFLO slower than FLBooster on the same workload —
  // the paper's headline ordering (Table III).
  auto run = [](EngineKind engine) {
    core::PlatformConfig cfg;
    cfg.engine = engine;
    cfg.model = core::FlModelKind::kHomoLr;
    cfg.dataset = fl::DatasetSpec{fl::DatasetKind::kRcv1, 256, 512, 40, 5};
    cfg.num_parties = 4;
    cfg.key_bits = 1024;
    cfg.modeled = true;
    cfg.train.max_epochs = 1;
    cfg.train.batch_size = 128;
    return core::Platform::Run(cfg).value();
  };
  auto fate = run(EngineKind::kFate);
  auto haflo = run(EngineKind::kHaflo);
  auto booster = run(EngineKind::kFlBooster);
  EXPECT_GT(fate.total_seconds, haflo.total_seconds);
  EXPECT_GT(haflo.total_seconds, booster.total_seconds);
  // Loss identical across engines (acceleration does not change learning
  // beyond quantization, which all engines share).
  EXPECT_NEAR(fate.train.final_loss, booster.train.final_loss, 5e-3);
  // Compression only in FLBooster.
  EXPECT_GT(booster.pack_ratio, 10.0);
  EXPECT_DOUBLE_EQ(fate.pack_ratio, 1.0);
  EXPECT_LT(booster.comm_bytes, haflo.comm_bytes / 10);
}

TEST(PlatformTest, AblationOrdering) {
  auto run = [](EngineKind engine) {
    core::PlatformConfig cfg;
    cfg.engine = engine;
    cfg.model = core::FlModelKind::kHomoLr;
    cfg.dataset = fl::DatasetSpec{fl::DatasetKind::kSynthetic, 128, 256, 256, 5};
    cfg.num_parties = 4;
    cfg.key_bits = 1024;
    cfg.modeled = true;
    cfg.train.max_epochs = 1;
    cfg.train.batch_size = 64;
    return core::Platform::Run(cfg).value();
  };
  auto full = run(EngineKind::kFlBooster);
  auto no_ghe = run(EngineKind::kFlBoosterNoGhe);
  auto no_bc = run(EngineKind::kFlBoosterNoBc);
  // Removing either module hurts (Table V).
  EXPECT_GT(no_ghe.total_seconds, full.total_seconds);
  EXPECT_GT(no_bc.total_seconds, full.total_seconds);
  // w/o BC hurts more than w/o GHE at 1024 bits on comm-heavy workloads
  // (Table V's consistent pattern).
  EXPECT_GT(no_bc.total_seconds, no_ghe.total_seconds);
}

}  // namespace
}  // namespace flb
