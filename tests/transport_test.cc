// Tests for EncVec transport over the simulated network, including the
// modeled-mode wire-size guarantee and fixed-point/compressed layouts.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/transport.h"
#include "src/gpusim/device.h"

namespace flb::core {
namespace {

struct Rig {
  SimClock clock;
  std::shared_ptr<gpusim::Device> device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), &clock);
  net::Network network{net::LinkSpec::GigabitEthernet(), &clock};
  std::unique_ptr<HeService> he;

  explicit Rig(bool modeled, EngineKind engine = EngineKind::kFlBooster) {
    HeServiceOptions opts;
    opts.engine = engine;
    opts.key_bits = 256;
    opts.r_bits = 14;
    opts.participants = 3;
    opts.frac_bits = 16;
    opts.fp_compress_slot_bits = 40;
    opts.modeled = modeled;
    he = HeService::Create(opts, &clock, device).value();
  }
};

TEST(TransportTest, FixedPointRoundTrip) {
  Rig rig(false);
  std::vector<double> values{1.5, -2.25, 0.125};
  auto enc = rig.he->EncryptFixedPoint(values).value();
  ASSERT_TRUE(SendEncVec(&rig.network, *rig.he, "a", "b", "fp", enc).ok());
  auto back = RecvEncVec(&rig.network, "b", "fp").value();
  EXPECT_EQ(back.layout, EncLayout::kFixedPoint);
  EXPECT_EQ(back.scale_muls, 0);
  auto dec = rig.he->DecryptFixedPoint(back).value();
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(dec[i], values[i], 1e-3);
  }
}

TEST(TransportTest, CompressedFixedPointSurvivesTheWire) {
  Rig rig(false);
  std::vector<double> values{1.5, -2.25, 0.125, 3.5, -0.5, 2.0};
  auto enc = rig.he->EncryptFixedPoint(values).value();
  auto packed = rig.he->CompressForTransmission(enc).value();
  ASSERT_LT(packed.num_ciphertexts(), enc.num_ciphertexts());
  ASSERT_TRUE(
      SendEncVec(&rig.network, *rig.he, "a", "b", "packed", packed).ok());
  auto back = RecvEncVec(&rig.network, "b", "packed").value();
  EXPECT_EQ(back.slots_per_cipher, packed.slots_per_cipher);
  EXPECT_EQ(back.fp_slot_bits, packed.fp_slot_bits);
  auto dec = rig.he->DecryptFixedPoint(back).value();
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(dec[i], values[i], 1e-3);
  }
}

TEST(TransportTest, ModeledModeChargesRealWireSize) {
  // The same logical vector must cost the same bytes on the wire whether
  // execution is real or modeled — the communication accounting is mode-
  // independent by construction.
  std::vector<double> values(64, 0.25);
  uint64_t bytes[2];
  int i = 0;
  for (bool modeled : {false, true}) {
    Rig rig(modeled);
    auto enc = rig.he->EncryptValues(values).value();
    ASSERT_TRUE(SendEncVec(&rig.network, *rig.he, "a", "b", "v", enc).ok());
    bytes[i++] = rig.network.stats().bytes;
  }
  EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(TransportTest, ObjectOverheadScalesWithCiphertextCount) {
  // A non-BC engine ships one object per value; BC ships ~1/15th. The
  // network charges per object, so the BC transfer is much faster.
  std::vector<double> values(60, 0.25);
  double secs[2];
  int i = 0;
  for (EngineKind engine :
       {EngineKind::kFlBoosterNoBc, EngineKind::kFlBooster}) {
    Rig rig(false, engine);
    auto enc = rig.he->EncryptValues(values).value();
    const double before = rig.clock.CommSeconds();
    ASSERT_TRUE(SendEncVec(&rig.network, *rig.he, "a", "b", "v", enc).ok());
    secs[i++] = rig.clock.CommSeconds() - before;
  }
  EXPECT_GT(secs[0], 5 * secs[1]);
}

TEST(TransportTest, DoublesRoundTrip) {
  Rig rig(false);
  std::vector<double> values{1.0, -2.0, 3.5};
  ASSERT_TRUE(SendDoubles(&rig.network, "a", "b", "d", values).ok());
  EXPECT_EQ(RecvDoubles(&rig.network, "b", "d").value(), values);
  EXPECT_TRUE(RecvDoubles(&rig.network, "b", "d").status().IsNotFound());
}

TEST(TransportTest, CorruptPayloadRejected) {
  Rig rig(false);
  ASSERT_TRUE(rig.network.Send("a", "b", "junk", {1, 2, 3}).ok());
  EXPECT_FALSE(RecvEncVec(&rig.network, "b", "junk").ok());
}

}  // namespace
}  // namespace flb::core
