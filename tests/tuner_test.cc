// Tests for the auto-tuner (src/core/tuner.h): knob space shape, workload
// fingerprints, the determinism contract (same seed + workload -> identical
// chosen knobs, and a tuned run is bit-identical to a direct run with those
// knobs), the TuningCache warm-up skip, and thread-count invariance of the
// search.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/platform.h"
#include "src/core/tuner.h"
#include "src/obs/metrics.h"
#include "src/obs/run_status.h"

namespace flb::tune {
namespace {

core::PlatformConfig SmallConfig() {
  core::PlatformConfig config;
  config.engine = core::EngineKind::kFlBooster;
  config.model = core::FlModelKind::kHomoLr;
  config.dataset.rows = 200;
  config.dataset.cols = 32;
  config.dataset.nnz_per_row = 8;
  config.num_parties = 4;
  config.key_bits = 256;
  config.modeled = true;
  config.train.max_epochs = 2;
  config.train.batch_size = 64;
  return config;
}

double MetricValueOf(const std::string& name) {
  double total = 0.0;
  for (const auto& metric : obs::MetricsRegistry::Global().Collect()) {
    if (metric.name == name) total += metric.value;
  }
  return total;
}

void ResetTunerState() {
  TuningCache::Global().Clear();
  obs::MetricsRegistry::Global().ResetAll();
  obs::RunStatus::Global().Reset();
}

TEST(KnobConfigTest, ToStringParseRoundTrip) {
  KnobConfig knobs;
  knobs.gpu_streams = 4;
  knobs.ghe_chunks_per_stream = 2;
  knobs.host_threads = 0;
  knobs.batch_size = 512;
  knobs.use_bc = 1;
  knobs.use_fixed_width_kernels = false;
  const std::optional<KnobConfig> parsed = KnobConfig::Parse(knobs.ToString());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, knobs);
}

TEST(KnobConfigTest, ParseRejectsMalformed) {
  EXPECT_FALSE(KnobConfig::Parse("").has_value());
  EXPECT_FALSE(KnobConfig::Parse("streams=4").has_value());
  EXPECT_FALSE(KnobConfig::Parse("garbage here entirely").has_value());
  // Out-of-range values are rejected, not trusted.
  EXPECT_FALSE(
      KnobConfig::Parse(
          "streams=9999 chunks=1 threads=0 batch=64 bc=-1 fixed=1")
          .has_value());
  EXPECT_FALSE(
      KnobConfig::Parse("streams=4 chunks=1 threads=0 batch=64 bc=7 fixed=1")
          .has_value());
}

TEST(KnobSpaceTest, GpuEngineSearchesStreamsAndChunks) {
  const KnobSpace space = KnobSpace::For(SmallConfig());
  EXPECT_EQ(space.gpu_streams, (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(space.chunks_per_stream, (std::vector<int>{1, 2, 4}));
  // Host threads are pinned: simulated time cannot distinguish them.
  EXPECT_EQ(space.host_threads, (std::vector<int>{0}));
  // Batch sizes bracket the workload default, clamped to the dataset.
  ASSERT_FALSE(space.batch_sizes.empty());
  for (const int batch : space.batch_sizes) {
    EXPECT_GE(batch, 16);
    EXPECT_LE(batch, 200);
  }
  const size_t expected = space.gpu_streams.size() *
                          space.chunks_per_stream.size() *
                          space.batch_sizes.size() * space.use_bc.size();
  EXPECT_EQ(space.Enumerate().size(), expected);
}

TEST(KnobSpaceTest, CpuEnginePinsDeviceAxes) {
  core::PlatformConfig config = SmallConfig();
  config.engine = core::EngineKind::kFate;
  const KnobSpace space = KnobSpace::For(config);
  EXPECT_EQ(space.gpu_streams, (std::vector<int>{0}));
  EXPECT_EQ(space.chunks_per_stream, (std::vector<int>{0}));
}

TEST(FingerprintTest, SeedExcludedWorkloadIncluded) {
  const core::PlatformConfig base = SmallConfig();
  core::PlatformConfig reseeded = base;
  reseeded.seed = base.seed + 12345;
  // Runs differing only by seed share tuned knobs.
  EXPECT_EQ(AutoTuner::Fingerprint(base), AutoTuner::Fingerprint(reseeded));

  core::PlatformConfig bigger_key = base;
  bigger_key.key_bits = 512;
  EXPECT_NE(AutoTuner::Fingerprint(base), AutoTuner::Fingerprint(bigger_key));
  core::PlatformConfig other_model = base;
  other_model.model = core::FlModelKind::kHeteroLr;
  EXPECT_NE(AutoTuner::Fingerprint(base),
            AutoTuner::Fingerprint(other_model));
}

TEST(AutoTunerTest, ApplyDefaultsIsIdentityOnKnobFields) {
  const core::PlatformConfig base = SmallConfig();
  const core::PlatformConfig applied = AutoTuner::Apply(base, KnobConfig{});
  EXPECT_EQ(applied.gpu_streams, base.gpu_streams);
  EXPECT_EQ(applied.ghe_chunks_per_stream, base.ghe_chunks_per_stream);
  EXPECT_EQ(applied.host_threads, base.host_threads);
  EXPECT_EQ(applied.train.batch_size, base.train.batch_size);
  EXPECT_EQ(applied.use_bc, base.use_bc);
  EXPECT_EQ(applied.use_fixed_width_kernels, base.use_fixed_width_kernels);
}

TEST(AutoTunerTest, SearchIsDeterministic) {
  const core::PlatformConfig config = SmallConfig();
  ResetTunerState();
  auto first = AutoTuner::Tune(config);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().cache_hit);
  EXPECT_GT(first.value().warmup_runs, 0);

  TuningCache::Global().Clear();  // force a fresh search, not a cache hit
  auto second = AutoTuner::Tune(config);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().cache_hit);
  EXPECT_EQ(first.value().chosen, second.value().chosen);
  EXPECT_EQ(first.value().warmup_runs, second.value().warmup_runs);
  EXPECT_EQ(first.value().warmup_seconds, second.value().warmup_seconds);
  EXPECT_EQ(first.value().measured_seconds, second.value().measured_seconds);
}

TEST(AutoTunerTest, TunedRunBitIdenticalToDirectRun) {
  core::PlatformConfig config = SmallConfig();
  ResetTunerState();
  FILE* devnull = nullptr;  // silence nothing; runs are quiet already
  (void)devnull;
  auto outcome = AutoTuner::Tune(config);
  ASSERT_TRUE(outcome.ok());

  // The tuned path: Run resolves knobs through the tuner (cache hit now).
  core::PlatformConfig tuned_config = config;
  tuned_config.auto_tune = true;
  auto tuned = core::Platform::Run(tuned_config);
  ASSERT_TRUE(tuned.ok());

  // The direct path: same knobs applied by hand, no tuner involved.
  const core::PlatformConfig direct_config =
      AutoTuner::Apply(config, outcome.value().chosen);
  auto direct = core::Platform::Run(direct_config);
  ASSERT_TRUE(direct.ok());

  EXPECT_EQ(tuned.value().total_seconds, direct.value().total_seconds);
  EXPECT_EQ(tuned.value().he_seconds, direct.value().he_seconds);
  EXPECT_EQ(tuned.value().comm_seconds, direct.value().comm_seconds);
  EXPECT_EQ(tuned.value().comm_bytes, direct.value().comm_bytes);
  EXPECT_EQ(tuned.value().comm_messages, direct.value().comm_messages);
  EXPECT_EQ(tuned.value().he_ops.encrypts, direct.value().he_ops.encrypts);
  EXPECT_EQ(tuned.value().he_ops.values_encrypted,
            direct.value().he_ops.values_encrypted);
  ASSERT_EQ(tuned.value().train.epochs.size(),
            direct.value().train.epochs.size());
  for (size_t i = 0; i < tuned.value().train.epochs.size(); ++i) {
    EXPECT_EQ(tuned.value().train.epochs[i].loss,
              direct.value().train.epochs[i].loss);
    EXPECT_EQ(tuned.value().train.epochs[i].accuracy,
              direct.value().train.epochs[i].accuracy);
  }
  EXPECT_EQ(tuned.value().train.final_loss, direct.value().train.final_loss);
}

TEST(AutoTunerTest, CacheHitSkipsWarmup) {
  const core::PlatformConfig config = SmallConfig();
  ResetTunerState();

  auto first = AutoTuner::Tune(config);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().cache_hit);
  const double warmups_after_first = MetricValueOf("flb.tuner.warmup_runs");
  EXPECT_GT(warmups_after_first, 0.0);
  EXPECT_EQ(MetricValueOf("flb.tuner.cache_misses"), 1.0);
  EXPECT_EQ(MetricValueOf("flb.tuner.cache_hits"), 0.0);

  auto second = AutoTuner::Tune(config);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_EQ(second.value().warmup_runs, 0);
  EXPECT_EQ(second.value().chosen, first.value().chosen);
  // The warm-up counter did not move: the cached path ran zero probes.
  EXPECT_EQ(MetricValueOf("flb.tuner.warmup_runs"), warmups_after_first);
  EXPECT_EQ(MetricValueOf("flb.tuner.cache_hits"), 1.0);
}

TEST(AutoTunerTest, SearchInvariantToHostThreadCount) {
  std::optional<KnobConfig> reference;
  for (const int threads : {1, 2, 8}) {
    core::PlatformConfig config = SmallConfig();
    config.host_threads = threads;
    ResetTunerState();
    auto outcome = AutoTuner::Tune(config);
    ASSERT_TRUE(outcome.ok());
    if (!reference.has_value()) {
      reference = outcome.value().chosen;
    } else {
      EXPECT_EQ(outcome.value().chosen, *reference)
          << "host_threads=" << threads
          << " changed the chosen knobs: the search must depend only on "
             "simulated time";
    }
  }
}

TEST(AutoTunerTest, ProbesDoNotTouchRunStatus) {
  const core::PlatformConfig config = SmallConfig();
  ResetTunerState();
  const std::string phase_before = obs::RunStatus::Global().phase();
  auto outcome = AutoTuner::Tune(config);
  ASSERT_TRUE(outcome.ok());
  // 16 probe runs happened, yet /status never left its pre-search phase.
  EXPECT_EQ(obs::RunStatus::Global().phase(), phase_before);
  // The tuner block itself is published.
  const std::string json = obs::RunStatus::Global().ToJson();
  EXPECT_NE(json.find("\"tuner\""), std::string::npos);
  EXPECT_NE(json.find(outcome.value().fingerprint), std::string::npos);
}

TEST(TuningCacheTest, DiskRoundTripAndCorruptLines) {
  const std::string path = ::testing::TempDir() + "/flb_tuner_cache_test.txt";
  std::remove(path.c_str());
  KnobConfig knobs;
  knobs.gpu_streams = 8;
  knobs.batch_size = 128;
  knobs.use_bc = 0;

  TuningCache::Global().Clear();
  ASSERT_TRUE(TuningCache::Global().Store(path, "deadbeef00000001", knobs).ok());

  // A fresh in-memory state must fall back to the file.
  TuningCache::Global().Clear();
  const std::optional<KnobConfig> loaded =
      TuningCache::Global().Lookup(path, "deadbeef00000001");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, knobs);
  EXPECT_FALSE(
      TuningCache::Global().Lookup(path, "0000000000000000").has_value());

  // Corrupt lines are skipped, valid ones still load.
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "flbtune v1\n");
  std::fprintf(f, "deadbeef00000002 total garbage\n");
  std::fprintf(f, "deadbeef00000003 %s\n", knobs.ToString().c_str());
  std::fclose(f);
  TuningCache::Global().Clear();
  EXPECT_FALSE(
      TuningCache::Global().Lookup(path, "deadbeef00000002").has_value());
  const std::optional<KnobConfig> valid =
      TuningCache::Global().Lookup(path, "deadbeef00000003");
  ASSERT_TRUE(valid.has_value());
  EXPECT_EQ(*valid, knobs);

  std::remove(path.c_str());
  TuningCache::Global().Clear();
}

TEST(AutoTunerTest, AutoTuneOffLeavesRunUntouched) {
  // The default-off path must be byte-identical to a direct run: Run with
  // auto_tune=false never consults the tuner or the cache.
  core::PlatformConfig config = SmallConfig();
  ResetTunerState();
  auto plain = core::Platform::Run(config);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(MetricValueOf("flb.tuner.cache_hits"), 0.0);
  EXPECT_EQ(MetricValueOf("flb.tuner.cache_misses"), 0.0);
  EXPECT_EQ(MetricValueOf("flb.tuner.warmup_runs"), 0.0);
}

}  // namespace
}  // namespace flb::tune
