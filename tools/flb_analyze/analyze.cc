#include "tools/flb_analyze/analyze.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <sstream>

#include "tools/flb_analyze/cache.h"

namespace flb::analyze {

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::vector<std::string> SplitChain(const std::string& chain) {
  std::vector<std::string> segs;
  std::string cur;
  for (char c : chain) {
    if (c == '.') {
      if (!cur.empty()) segs.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) segs.push_back(cur);
  return segs;
}

std::string Join(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += sep;
    out += p;
  }
  return out;
}

// ---------------------------------------------------------------------------
// FLB009: layer ranks.
// ---------------------------------------------------------------------------

// The architecture DAG, bottom-up. Same-rank siblings must not include
// each other either.
int LayerRank(const std::string& layer) {
  static const std::map<std::string, int> ranks = {
      {"src/common", 0}, {"src/mpint", 1},  {"src/crypto", 2},
      {"src/codec", 3},  {"src/gpusim", 3}, {"src/net", 3},
      {"src/ghe", 4},    {"src/core", 5},   {"src/fl", 6},
      {"src/obs", 7}};
  const auto it = ranks.find(layer);
  return it == ranks.end() ? -1 : it->second;
}

// "src/common/mutex.h" -> "src/common"; "" when not under a known layer.
std::string LayerOf(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return "";
  const size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  const std::string layer = path.substr(0, slash);
  return LayerRank(layer) >= 0 ? layer : "";
}

// ---------------------------------------------------------------------------
// FLB007: hazard-plane classification.
// ---------------------------------------------------------------------------

bool ChainHas(const std::string& chain, const char* what) {
  for (const std::string& seg : SplitChain(chain)) {
    if (seg.find(what) != std::string::npos) return true;
  }
  return false;
}

// Non-empty label when the call site directly enters the metrics/trace/
// clock/callback plane — the planes that must only ever be entered
// lock-free (the leaf-lock discipline, DESIGN.md section 6b).
std::string DirectHazard(const CallSite& c) {
  static const std::set<std::string> recorder_methods = {
      "Count", "Observe", "Span", "Instant", "Collect", "Record", "Emit",
      "Set",   "Push"};
  if (recorder_methods.count(c.callee) != 0) {
    for (const std::string& seg : SplitChain(c.chain)) {
      if (seg == "rec" || seg == "recorder" ||
          seg.find("metric") != std::string::npos ||
          seg.find("registry") != std::string::npos ||
          seg.find("record") != std::string::npos ||
          seg.find("trace") != std::string::npos) {
        return "recorder";
      }
    }
  }
  if (c.callee == "ChargeSpan" ||
      (c.callee == "Charge" && ChainHas(c.chain, "clock"))) {
    return "clock";
  }
  const std::string low = Lower(c.callee);
  if (low.find("callback") != std::string::npos || ChainHas(c.chain, "callback")) {
    return "callback";
  }
  return "";
}

// ---------------------------------------------------------------------------
// The analyzer.
// ---------------------------------------------------------------------------

class Analyzer {
 public:
  Analyzer(const std::vector<FileFacts>& facts, const Options& opts)
      : facts_(facts), opts_(opts) {
    for (size_t fi = 0; fi < facts_.size(); ++fi) {
      for (size_t gi = 0; gi < facts_[fi].functions.size(); ++gi) {
        const FnFacts& fn = facts_[fi].functions[gi];
        fns_.push_back(&fn);
        fn_file_.push_back(fi);
        const size_t sep = fn.qual_name.rfind("::");
        const std::string name =
            sep == std::string::npos ? fn.qual_name : fn.qual_name.substr(sep + 2);
        by_name_[name].push_back(fns_.size() - 1);
      }
      for (const std::string& name : facts_[fi].unordered_decls) {
        unordered_.insert(name);
      }
    }
  }

  Report Run() {
    report_.files_scanned = facts_.size();
    report_.functions_analyzed = fns_.size();
    Layering();
    Deadlock();
    Taint();
    Finish();
    return std::move(report_);
  }

 private:
  // Candidate callees for `callee` as called from function f: a same-class
  // method wins outright; otherwise a global name match is taken, unioned
  // conservatively by the callers. A plain call tolerates mild ambiguity
  // (<= 3 bodies); a receiver call (`obj->M()`) has a type we cannot see,
  // so only an unambiguous name (exactly one body) resolves.
  const std::vector<size_t>& Resolve(size_t f, const std::string& callee,
                                     bool has_receiver = false) {
    static const std::vector<size_t> empty;
    const std::string key = fns_[f]->class_name + "|" + callee +
                            (has_receiver ? "|r" : "");
    auto cached = resolve_memo_.find(key);
    if (cached != resolve_memo_.end()) return cached->second;
    std::vector<size_t> out;
    const auto it = by_name_.find(callee);
    if (it != by_name_.end()) {
      if (!fns_[f]->class_name.empty()) {
        for (size_t g : it->second) {
          if (fns_[g]->class_name == fns_[f]->class_name) out.push_back(g);
        }
      }
      const size_t limit = has_receiver ? 1 : 3;
      if (out.empty() && it->second.size() <= limit) out = it->second;
    }
    return resolve_memo_.emplace(key, std::move(out)).first->second;
  }

  const std::vector<size_t>& Resolve(size_t f, const CallSite& c) {
    return Resolve(f, c.callee, !c.chain.empty());
  }

  std::string FnLoc(size_t f) const {
    return fns_[f]->qual_name + " (" + facts_[fn_file_[f]].path + ":" +
           std::to_string(fns_[f]->line) + ")";
  }

  // ---- FLB009 --------------------------------------------------------

  bool Excepted(const std::string& from, const std::string& to_layer) const {
    for (const LayerException& e : opts_.layering_exceptions) {
      const bool from_ok =
          e.from == "*" || e.from == from ||
          (from.size() > e.from.size() &&
           from.compare(from.size() - e.from.size(), e.from.size(), e.from) ==
               0 &&
           from[from.size() - e.from.size() - 1] == '/');
      if (from_ok && to_layer == e.to_layer) return true;
    }
    return false;
  }

  void Layering() {
    for (const FileFacts& file : facts_) {
      const std::string layer = LayerOf(file.path);
      for (const IncludeDecl& inc : file.includes) {
        if (!inc.angled) ++report_.include_edges;
        if (layer.empty() || inc.angled) continue;
        const std::string target_layer = LayerOf(inc.target);
        if (target_layer.empty() || target_layer == layer) continue;
        const int from_rank = LayerRank(layer);
        const int to_rank = LayerRank(target_layer);
        if (to_rank < from_rank) continue;  // downward: allowed
        if (Excepted(file.path, target_layer)) continue;
        Finding f;
        f.rule = "FLB009";
        f.file = file.path;
        f.line = inc.line;
        f.key = "FLB009|" + file.path + "|" + inc.target;
        f.message =
            file.path + " includes " + inc.target + ": layer " + layer +
            " (rank " + std::to_string(from_rank) + ") must not depend " +
            (to_rank == from_rank ? "on sibling layer " : "upward on ") +
            target_layer + " (rank " + std::to_string(to_rank) +
            "); add a sanctioned back-edge to the exceptions file or invert "
            "the dependency";
        Emit(std::move(f));
      }
    }
  }

  // ---- FLB007 --------------------------------------------------------

  struct EdgeW {
    size_t fn = 0;
    int line = 0;
    std::string note;
  };

  void Deadlock() {
    // Transitively acquired locks per function.
    std::vector<std::set<std::string>> acq(fns_.size());
    for (size_t f = 0; f < fns_.size(); ++f) {
      for (const LockAcq& a : fns_[f]->acquisitions) acq[f].insert(a.lock);
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (size_t f = 0; f < fns_.size(); ++f) {
        for (const CallSite& c : fns_[f]->calls) {
          if (c.deferred) continue;  // runs when the lambda runs, not here
          for (size_t g : Resolve(f, c)) {
            for (const std::string& l : acq[g]) {
              changed |= acq[f].insert(l).second;
            }
          }
        }
      }
    }

    // The lock-acquisition graph: edge h -> l when l is (transitively)
    // acquired while h is held.
    std::map<std::string, std::map<std::string, EdgeW>> graph;
    auto add_edge = [&](const std::string& h, const std::string& l, size_t f,
                        int line, std::string note) {
      graph[h].emplace(l, EdgeW{f, line, std::move(note)});
      graph[l];  // ensure the node exists
    };
    for (size_t f = 0; f < fns_.size(); ++f) {
      for (const LockAcq& a : fns_[f]->acquisitions) {
        graph[a.lock];
        for (const std::string& h : a.held) {
          add_edge(h, a.lock, f, a.line, "acquired in " + FnLoc(f));
        }
      }
      for (const CallSite& c : fns_[f]->calls) {
        if (c.held.empty() || c.deferred) continue;
        for (size_t g : Resolve(f, c)) {
          for (const std::string& l : acq[g]) {
            for (const std::string& h : c.held) {
              if (h == l) continue;  // re-entry via call: too coarse to flag
              add_edge(h, l, f, c.line,
                       "via call to " + fns_[g]->qual_name + " from " +
                           FnLoc(f));
            }
          }
        }
      }
    }
    report_.lock_nodes = graph.size();
    for (const auto& [node, succs] : graph) report_.lock_edges += succs.size();

    // Cycles: for every edge a->b, a path b ->* a closes a cycle. Each
    // distinct lock set is reported once, keyed independently of lines.
    std::set<std::string> seen;
    for (const auto& [a, succs] : graph) {
      for (const auto& [b, edge] : succs) {
        // Path b ->* a (inclusive); for a self-edge it is just {a}.
        const std::vector<std::string> path = FindPath(graph, b, a);
        if (path.empty()) continue;
        std::vector<std::string> cycle = {a};
        cycle.insert(cycle.end(), path.begin(), path.end());
        std::vector<std::string> canon = cycle;
        std::sort(canon.begin(), canon.end());
        canon.erase(std::unique(canon.begin(), canon.end()), canon.end());
        const std::string key = "FLB007|cycle|" + Join(canon, "+");
        if (!seen.insert(key).second) continue;
        Finding f;
        f.rule = "FLB007";
        f.file = facts_[fn_file_[edge.fn]].path;
        f.line = edge.line;
        f.key = key;
        f.message =
            canon.size() == 1
                ? "lock " + a + " is re-acquired while already held; " +
                      "common::Mutex is non-recursive, so this self-deadlocks"
                : "lock-order cycle: " + Join(cycle, " -> ") +
                      "; two threads interleaving these acquisitions deadlock";
        f.witness.push_back(a + " -> " + b + ": " + edge.note);
        for (size_t i = 1; i + 1 < cycle.size(); ++i) {
          const auto succ_it = graph.find(cycle[i]);
          if (succ_it == graph.end()) continue;
          const auto e = succ_it->second.find(cycle[i + 1]);
          if (e != succ_it->second.end()) {
            f.witness.push_back(cycle[i] + " -> " + cycle[i + 1] + ": " +
                                e->second.note);
          }
        }
        Emit(std::move(f));
      }
    }

    HazardCalls();
  }

  static std::vector<std::string> FindPath(
      const std::map<std::string, std::map<std::string, EdgeW>>& graph,
      const std::string& from, const std::string& to) {
    std::map<std::string, std::string> parent;
    std::deque<std::string> queue = {from};
    parent[from] = from;
    while (!queue.empty()) {
      const std::string cur = queue.front();
      queue.pop_front();
      if (cur == to) {
        std::vector<std::string> path;
        for (std::string p = cur;; p = parent[p]) {
          path.push_back(p);
          if (parent[p] == p) break;
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      const auto it = graph.find(cur);
      if (it == graph.end()) continue;
      for (const auto& [next, edge] : it->second) {
        if (parent.emplace(next, cur).second) queue.push_back(next);
      }
    }
    return {};
  }

  void HazardCalls() {
    // Which functions (transitively) enter a hazard plane, and via whom.
    struct Haz {
      std::string label;
      std::string target;  // direct hazard callee, for the witness
      size_t via = SIZE_MAX;
    };
    std::vector<Haz> haz(fns_.size());
    for (size_t f = 0; f < fns_.size(); ++f) {
      for (const CallSite& c : fns_[f]->calls) {
        if (c.deferred) continue;
        const std::string label = DirectHazard(c);
        if (!label.empty()) {
          haz[f] = Haz{label, c.callee + "()"};
          break;
        }
      }
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (size_t f = 0; f < fns_.size(); ++f) {
        if (!haz[f].label.empty()) continue;
        for (const CallSite& c : fns_[f]->calls) {
          if (c.deferred) continue;
          for (size_t g : Resolve(f, c)) {
            if (g != f && !haz[g].label.empty()) {
              haz[f] = Haz{haz[g].label, haz[g].target, g};
              changed = true;
              break;
            }
          }
          if (!haz[f].label.empty()) break;
        }
      }
    }

    for (size_t f = 0; f < fns_.size(); ++f) {
      for (const CallSite& c : fns_[f]->calls) {
        if (c.held.empty() || c.deferred) continue;
        const std::string direct = DirectHazard(c);
        std::string label = direct;
        std::vector<std::string> hops;
        if (label.empty()) {
          for (size_t g : Resolve(f, c)) {
            if (g == f || haz[g].label.empty()) continue;
            label = haz[g].label;
            // Reconstruct the call chain down to the direct hazard.
            size_t cur = g;
            for (int depth = 0; depth < 12; ++depth) {
              hops.push_back(FnLoc(cur));
              if (haz[cur].via == SIZE_MAX) break;
              cur = haz[cur].via;
            }
            hops.push_back(haz[cur].target);
            break;
          }
        }
        if (label.empty()) continue;
        Finding fd;
        fd.rule = "FLB007";
        fd.file = facts_[fn_file_[f]].path;
        fd.line = c.line;
        fd.key = "FLB007|held-call|" + fd.file + "|" + fns_[f]->qual_name +
                 "|" + c.callee + "|" + c.held.front();
        fd.message = fns_[f]->qual_name + " calls " + c.callee + " (" +
                     label + " plane) while holding " + Join(c.held, ", ") +
                     "; the " + label +
                     " plane takes its own lock and must stay a leaf — drop "
                     "the component lock first";
        fd.witness.push_back("holding " + Join(c.held, ", "));
        for (const std::string& hop : hops) {
          fd.witness.push_back("-> " + hop);
        }
        Emit(std::move(fd));
      }
    }
  }

  // ---- FLB008 --------------------------------------------------------

  // Root sources reached by one atom, resolving call returns and iter
  // names through the global indexes. `via` receives one witness line per
  // resolution hop for the first root found.
  void AtomRoots(size_t f, const std::string& atom,
                 std::vector<std::set<std::string>>& returns_roots,
                 std::set<std::string>* roots, std::vector<std::string>* via) {
    if (atom.rfind("src:", 0) == 0) {
      roots->insert(atom.substr(4));
      return;
    }
    if (atom.rfind("iter:", 0) == 0) {
      if (unordered_.count(atom.substr(5)) != 0) {
        roots->insert("unordered_iter");
        if (via != nullptr) {
          via->push_back("iterates unordered container '" + atom.substr(5) +
                         "'");
        }
      }
      return;
    }
    if (atom.rfind("call:", 0) == 0) {
      for (size_t g : Resolve(f, atom.substr(5))) {
        if (!returns_roots[g].empty()) {
          roots->insert(returns_roots[g].begin(), returns_roots[g].end());
          if (via != nullptr) {
            via->push_back("tainted return of " + FnLoc(g));
          }
        }
      }
    }
    // param:<i> atoms root nowhere here: the flow is reported at the call
    // site where a concrete source enters (sink_params below).
  }

  void Taint() {
    // Fixpoint 1: root sources flowing out of each function's return.
    std::vector<std::set<std::string>> returns_roots(fns_.size());
    for (bool changed = true; changed;) {
      changed = false;
      for (size_t f = 0; f < fns_.size(); ++f) {
        std::set<std::string> roots;
        for (const std::string& atom : fns_[f]->return_atoms) {
          AtomRoots(f, atom, returns_roots, &roots, nullptr);
        }
        for (const std::string& r : roots) {
          changed |= returns_roots[f].insert(r).second;
        }
      }
    }

    // Fixpoint 2: which parameters flow (transitively) into a sink.
    std::vector<std::map<size_t, std::string>> sink_params(fns_.size());
    for (size_t f = 0; f < fns_.size(); ++f) {
      for (const SinkSite& s : fns_[f]->sinks) {
        for (const std::string& atom : s.atoms) {
          if (atom.rfind("param:", 0) == 0) {
            const size_t idx = std::stoul(atom.substr(6));
            sink_params[f].emplace(idx, s.kind);
          }
        }
      }
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (size_t f = 0; f < fns_.size(); ++f) {
        for (const CallSite& c : fns_[f]->calls) {
          for (size_t g : Resolve(f, c)) {
            if (g == f) continue;
            for (const auto& [gidx, kind] : sink_params[g]) {
              if (gidx >= c.args.size()) continue;
              for (const std::string& atom : c.args[gidx]) {
                if (atom.rfind("param:", 0) == 0) {
                  const size_t fidx = std::stoul(atom.substr(6));
                  changed |= sink_params[f].emplace(fidx, kind).second;
                }
              }
            }
          }
        }
      }
    }

    // Findings at in-function sinks.
    for (size_t f = 0; f < fns_.size(); ++f) {
      for (const SinkSite& s : fns_[f]->sinks) {
        std::set<std::string> roots;
        std::vector<std::string> via;
        for (const std::string& atom : s.atoms) {
          AtomRoots(f, atom, returns_roots, &roots, &via);
        }
        EmitTaint(f, s.kind, s.line, roots, via, "");
      }
      // Findings at call sites whose argument feeds a sink downstream.
      for (const CallSite& c : fns_[f]->calls) {
        for (size_t g : Resolve(f, c)) {
          if (g == f) continue;
          for (const auto& [gidx, kind] : sink_params[g]) {
            if (gidx >= c.args.size()) continue;
            std::set<std::string> roots;
            std::vector<std::string> via;
            for (const std::string& atom : c.args[gidx]) {
              AtomRoots(f, atom, returns_roots, &roots, &via);
            }
            via.push_back("argument " + std::to_string(gidx) + " of " +
                          FnLoc(g) + " reaches its " + kind + " sink");
            EmitTaint(f, kind, c.line, roots, via, c.callee);
          }
          break;  // one resolution is enough for reporting
        }
      }
    }
  }

  void EmitTaint(size_t f, const std::string& kind, int line,
                 const std::set<std::string>& roots,
                 const std::vector<std::string>& via,
                 const std::string& callee) {
    static const std::map<std::string, std::string> sink_desc = {
        {"charge", "simulated-time charge"},
        {"serialize", "serialized message bytes"},
        {"rng_seed", "Rng seed"},
        {"report", "RunReport field"}};
    static const std::map<std::string, std::string> root_desc = {
        {"wall_clock", "wall-clock time"},
        {"entropy", "ambient entropy"},
        {"pointer_order", "pointer-derived ordering"},
        {"unordered_iter", "unordered-container iteration order"}};
    for (const std::string& root : roots) {
      Finding fd;
      fd.rule = "FLB008";
      fd.file = facts_[fn_file_[f]].path;
      fd.line = line;
      fd.key = "FLB008|" + fd.file + "|" + fns_[f]->qual_name + "|" + kind +
               "|" + root + (callee.empty() ? "" : "|" + callee);
      fd.message = fns_[f]->qual_name + ": " + root_desc.at(root) +
                   " flows into a " + sink_desc.at(kind) +
                   "; this breaks bit-identical reproducibility across "
                   "runs and thread counts";
      fd.witness = via;
      Emit(std::move(fd));
    }
  }

  // ---- emission ------------------------------------------------------

  void Emit(Finding f) {
    if (!keys_seen_.insert(f.key).second) return;
    // Inline suppression at the finding line, lint syntax and semantics.
    for (const FileFacts& file : facts_) {
      if (file.path != f.file) continue;
      const auto it = file.suppressions.find(f.line);
      if (it != file.suppressions.end() &&
          it->second.rules.count(f.rule) != 0) {
        if (it->second.justified) {
          ++report_.suppressed;
          return;
        }
        ++report_.unjustified_allows;
      }
      break;
    }
    if (opts_.baseline.count(f.key) != 0) {
      ++report_.baselined;
      return;
    }
    report_.findings.push_back(std::move(f));
  }

  void Finish() {
    std::sort(report_.findings.begin(), report_.findings.end(),
              [](const Finding& a, const Finding& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                return a.key < b.key;
              });
  }

  const std::vector<FileFacts>& facts_;
  const Options& opts_;
  Report report_;
  std::vector<const FnFacts*> fns_;
  std::vector<size_t> fn_file_;
  std::map<std::string, std::vector<size_t>> by_name_;
  std::set<std::string> unordered_;
  std::map<std::string, std::vector<size_t>> resolve_memo_;
  std::set<std::string> keys_seen_;
};

std::string EscapeJson(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool ReadLines(const std::string& path, std::vector<std::string>* out,
               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r' ||
                             line.back() == '\t')) {
      line.pop_back();
    }
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    out->push_back(line.substr(start));
  }
  return true;
}

}  // namespace

const std::vector<lint::RuleInfo>& Rules() {
  static const std::vector<lint::RuleInfo> rules = {
      {"FLB007", "lock-order",
       "cycles in the global lock-acquisition graph, and metrics/trace/"
       "clock/callback calls made while a component lock is held"},
      {"FLB008", "determinism-taint",
       "wall-clock, entropy, pointer-order, or unordered-iteration values "
       "flowing into sim-time charges, serialized bytes, Rng seeds, or "
       "RunReport fields"},
      {"FLB009", "layering",
       "includes that climb the architecture DAG (common -> mpint -> crypto "
       "-> {codec,gpusim,net} -> ghe -> core -> fl) without a sanctioned "
       "exception"},
  };
  return rules;
}

bool LoadExceptionsFile(const std::string& path,
                        std::vector<LayerException>* out, std::string* error) {
  std::vector<std::string> lines;
  if (!ReadLines(path, &lines, error)) return false;
  for (const std::string& line : lines) {
    const size_t arrow = line.find("->");
    const size_t dashes = line.find("--");
    if (arrow == std::string::npos || dashes == std::string::npos ||
        dashes <= arrow) {
      if (error != nullptr) {
        *error = path + ": malformed exception (want `<from> -> <layer> -- "
                        "<reason>`): " + line;
      }
      return false;
    }
    auto trim = [](std::string s) {
      const size_t b = s.find_first_not_of(" \t");
      const size_t e = s.find_last_not_of(" \t");
      return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
    };
    LayerException ex;
    ex.from = trim(line.substr(0, arrow));
    ex.to_layer = trim(line.substr(arrow + 2, dashes - arrow - 2));
    ex.reason = trim(line.substr(dashes + 2));
    if (ex.from.empty() || ex.to_layer.empty() || ex.reason.empty()) {
      if (error != nullptr) {
        *error = path + ": exception needs a from, a layer, and a reason: " +
                 line;
      }
      return false;
    }
    out->push_back(std::move(ex));
  }
  return true;
}

bool LoadBaselineFile(const std::string& path, std::set<std::string>* out,
                      std::string* error) {
  std::vector<std::string> lines;
  if (!ReadLines(path, &lines, error)) return false;
  out->insert(lines.begin(), lines.end());
  return true;
}

Report AnalyzeFacts(const std::vector<FileFacts>& facts, const Options& opts) {
  return Analyzer(facts, opts).Run();
}

Report AnalyzeFiles(const std::vector<lint::FileInput>& files,
                    const Options& opts) {
  std::vector<FileFacts> facts;
  facts.reserve(files.size());
  for (const lint::FileInput& f : files) {
    facts.push_back(ExtractFacts(f.path, f.content));
  }
  return AnalyzeFacts(facts, opts);
}

bool AnalyzeTree(const std::string& root, const Options& opts,
                 const std::string& cache_path, Report* report,
                 std::string* error) {
  std::vector<lint::FileInput> files;
  if (!lint::ReadTree(root, &files, error)) return false;

  std::map<std::string, FileFacts> cached;
  if (!cache_path.empty() &&
      !LoadCache(cache_path, &cached, error)) {
    return false;
  }
  std::vector<FileFacts> facts;
  uint64_t hits = 0, misses = 0;
  facts.reserve(files.size());
  for (const lint::FileInput& f : files) {
    const std::string norm = NormalizePath(f.path);
    const uint64_t hash = HashContent(f.content);
    const auto it = cached.find(norm);
    if (it != cached.end() && it->second.content_hash == hash) {
      ++hits;
      facts.push_back(it->second);
    } else {
      ++misses;
      facts.push_back(ExtractFacts(f.path, f.content));
    }
  }
  if (!cache_path.empty() && !SaveCache(cache_path, facts, error)) {
    return false;
  }
  *report = AnalyzeFacts(facts, opts);
  report->cache_hits = hits;
  report->cache_misses = misses;
  return true;
}

std::string ReportToBenchJson(const Report& report) {
  std::map<std::string, uint64_t> by_rule;
  for (const lint::RuleInfo& rule : Rules()) by_rule[rule.id] = 0;
  for (const Finding& f : report.findings) ++by_rule[f.rule];

  std::ostringstream out;
  out << "{\"bench\":\"flb_analyze\",\"results\":[";
  bool first = true;
  auto row = [&](const std::string& section, const std::string& metric,
                 uint64_t value) {
    out << (first ? "\n" : ",\n")
        << "{\"bench\":\"flb_analyze\",\"section\":\"" << section
        << "\",\"metric\":\"" << metric << "\",\"value\":" << value
        << ",\"unit\":\"count\"}";
    first = false;
  };
  row("analyze", "flb.analyze.rules_run", Rules().size());
  row("analyze", "flb.analyze.files_scanned", report.files_scanned);
  row("analyze", "flb.analyze.functions_analyzed", report.functions_analyzed);
  row("analyze", "flb.analyze.lock_nodes", report.lock_nodes);
  row("analyze", "flb.analyze.lock_edges", report.lock_edges);
  row("analyze", "flb.analyze.include_edges", report.include_edges);
  row("analyze", "flb.analyze.findings", report.findings.size());
  row("analyze", "flb.analyze.baselined", report.baselined);
  row("analyze", "flb.analyze.suppressed", report.suppressed);
  row("analyze", "flb.analyze.unjustified_allows", report.unjustified_allows);
  row("analyze", "flb.analyze.cache_hits", report.cache_hits);
  row("analyze", "flb.analyze.cache_misses", report.cache_misses);
  for (const auto& [rule, count] : by_rule) {
    row("rules", "flb.analyze.findings_by_rule." + rule, count);
  }
  out << "\n]}";
  return out.str();
}

std::string ReportToSarif(const Report& report) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\n"
      << "      \"name\": \"flb_analyze\",\n"
      << "      \"informationUri\": "
         "\"https://example.invalid/flbooster/tools/flb_analyze\",\n"
      << "      \"version\": \"1.0.0\",\n"
      << "      \"rules\": [";
  bool first = true;
  for (const lint::RuleInfo& rule : Rules()) {
    out << (first ? "\n" : ",\n") << "        {\"id\": \"" << rule.id
        << "\", \"name\": \"" << EscapeJson(rule.name)
        << "\", \"shortDescription\": {\"text\": \""
        << EscapeJson(rule.summary) << "\"}}";
    first = false;
  }
  out << "\n      ]\n    }},\n    \"results\": [";
  first = true;
  for (const Finding& f : report.findings) {
    std::string text = f.message;
    for (const std::string& w : f.witness) text += "\n" + w;
    out << (first ? "\n" : ",\n") << "      {\"ruleId\": \"" << f.rule
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << EscapeJson(text) << "\"}, \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": \"" << EscapeJson(f.file)
        << "\"}, \"region\": {\"startLine\": " << (f.line > 0 ? f.line : 1)
        << "}}}], \"partialFingerprints\": {\"flbAnalyzeKey/v1\": \""
        << EscapeJson(f.key) << "\"}}";
    first = false;
  }
  out << "\n    ]\n  }]\n}";
  return out.str();
}

std::string ReportToBaseline(const Report& report) {
  std::vector<std::string> keys;
  keys.reserve(report.findings.size());
  for (const Finding& f : report.findings) keys.push_back(f.key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::ostringstream out;
  out << "# flb_analyze baseline: accepted findings, one stable key per "
         "line.\n"
      << "# Regenerate with `flb_analyze --root src --write-baseline "
         "<this file>`\n"
      << "# after reviewing that every entry is known, accepted debt.\n";
  for (const std::string& k : keys) out << k << "\n";
  return out.str();
}

}  // namespace flb::analyze
