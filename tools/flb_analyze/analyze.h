// flb_analyze: flow-aware, interprocedural static analysis for FLBooster.
//
// Where flb_lint flags banned names line-by-line, flb_analyze builds a
// model of the whole tree — per-function lock-acquisition and call facts,
// per-function taint atoms, and the cross-TU include graph — and runs
// three global passes over it:
//
//   FLB007 lock-order     static deadlock detection: cycles in the global
//                         lock-acquisition graph, plus calls into the
//                         metrics/trace/clock plane made while a component
//                         lock is held (the leaf-lock discipline)
//   FLB008 determinism-taint
//                         wall-clock, ambient-entropy, pointer-order, and
//                         unordered-iteration values propagated through
//                         assignments, returns, and call edges into
//                         sim-time charging, serialized bytes, Rng seeding,
//                         and RunReport fields
//   FLB009 layering       the architecture include DAG (common -> mpint ->
//                         crypto -> {codec,gpusim,net} -> ghe -> core ->
//                         fl), with an explicit exceptions file for the
//                         sanctioned back-edges
//
// Every finding carries a line-number-independent `key`; a reviewed
// baseline file of keys separates accepted debt from new regressions, and
// inline `// flb-lint: allow(FLB00x) reason` comments suppress at the
// finding line exactly as for flb_lint. Facts are serializable per file
// (see facts.h) and cached keyed on content hash, so a warm incremental
// run re-parses only edited files.

#ifndef FLB_TOOLS_FLB_ANALYZE_ANALYZE_H_
#define FLB_TOOLS_FLB_ANALYZE_ANALYZE_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "tools/flb_analyze/facts.h"
#include "tools/flb_lint/lint.h"

namespace flb::analyze {

// The fixed rule table (FLB007..FLB009), in rule-ID order.
const std::vector<lint::RuleInfo>& Rules();

struct Finding {
  std::string rule;  // "FLB007" | "FLB008" | "FLB009"
  std::string file;  // normalized path
  int line = 0;
  std::string message;
  // Stable identity: independent of line numbers, so the baseline survives
  // unrelated edits. E.g. "FLB007|cycle|A::mu_+B::mu_".
  std::string key;
  // Human-readable witness: the interprocedural path that produced the
  // finding, one hop per entry.
  std::vector<std::string> witness;
};

// One sanctioned layering back-edge: includes from any file whose
// normalized path matches `from` (exact path, or "*" for any) into layer
// directory `to_layer` ("src/fl") are exempt from FLB009.
struct LayerException {
  std::string from;
  std::string to_layer;
  std::string reason;
};

struct Options {
  std::vector<LayerException> layering_exceptions;
  std::set<std::string> baseline;  // finding keys accepted as known debt
};

// Parses `<from-path-or-*> -> <to-layer> -- <reason>` lines (# comments
// and blank lines ignored). The reason is mandatory: an exception without
// a recorded justification is a malformed file.
bool LoadExceptionsFile(const std::string& path,
                        std::vector<LayerException>* out, std::string* error);

// Parses a baseline file: one finding key per line, # comments ignored.
bool LoadBaselineFile(const std::string& path, std::set<std::string>* out,
                      std::string* error);

struct Report {
  std::vector<Finding> findings;  // new (non-baselined), sorted
  uint64_t files_scanned = 0;
  uint64_t functions_analyzed = 0;
  uint64_t lock_nodes = 0;       // distinct locks in the acquisition graph
  uint64_t lock_edges = 0;
  uint64_t include_edges = 0;
  uint64_t baselined = 0;        // findings matched by the baseline
  uint64_t suppressed = 0;       // silenced by justified inline allow()
  uint64_t unjustified_allows = 0;
  uint64_t cache_hits = 0;       // filled by AnalyzeTree when caching
  uint64_t cache_misses = 0;
};

// Runs all three passes over pre-extracted facts. `facts` is the whole
// translation set; cross-file resolution (call edges, unordered-name
// index, include layers) happens here.
Report AnalyzeFacts(const std::vector<FileFacts>& facts, const Options& opts);

// Extracts facts from in-memory files, then analyzes.
Report AnalyzeFiles(const std::vector<lint::FileInput>& files,
                    const Options& opts);

// Walks `root` for *.h/*.cc/*.cpp (sorted order) and analyzes the tree.
// When `cache_path` is non-empty, per-file facts are loaded from / saved
// to it, keyed on content hash (see cache.h). Returns false with `error`
// set on IO failure.
bool AnalyzeTree(const std::string& root, const Options& opts,
                 const std::string& cache_path, Report* report,
                 std::string* error);

// BenchJson summary (`flb.analyze.*` metrics), schema-compatible with
// scripts/validate_obs_json.sh.
std::string ReportToBenchJson(const Report& report);

// SARIF 2.1.0 log with one result per finding, fingerprinted by `key`
// (uploaded to GitHub code scanning by the CI lint job).
std::string ReportToSarif(const Report& report);

// All finding keys, one per line, in sorted order — the exact content a
// baseline file accepting the current findings should have.
std::string ReportToBaseline(const Report& report);

}  // namespace flb::analyze

#endif  // FLB_TOOLS_FLB_ANALYZE_ANALYZE_H_
