#include "tools/flb_analyze/cache.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace flb::analyze {

namespace {

// `-` = empty list, `_` = empty element.
std::string EncodeList(const std::vector<std::string>& items) {
  if (items.empty()) return "-";
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ',';
    out += item.empty() ? "_" : item;
  }
  return out;
}

std::vector<std::string> DecodeList(const std::string& field) {
  std::vector<std::string> items;
  if (field == "-") return items;
  std::string cur;
  for (char c : field) {
    if (c == ',') {
      items.push_back(cur == "_" ? "" : cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  items.push_back(cur == "_" ? "" : cur);
  return items;
}

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream in(line);
  std::string field;
  while (in >> field) fields.push_back(field);
  return fields;
}

}  // namespace

std::string SerializeCache(const std::vector<FileFacts>& facts) {
  std::ostringstream out;
  out << "flb-analyze-cache " << kCacheVersion << "\n";
  for (const FileFacts& file : facts) {
    out << "file " << file.path << " " << file.content_hash << "\n";
    for (const IncludeDecl& inc : file.includes) {
      out << "i " << inc.target << " " << (inc.angled ? 1 : 0) << " "
          << inc.line << "\n";
    }
    if (!file.unordered_decls.empty()) {
      out << "u " << EncodeList(file.unordered_decls) << "\n";
    }
    for (const auto& [line, supp] : file.suppressions) {
      std::vector<std::string> rules(supp.rules.begin(), supp.rules.end());
      out << "x " << line << " " << EncodeList(rules) << " "
          << (supp.justified ? 1 : 0) << "\n";
    }
    for (const FnFacts& fn : file.functions) {
      out << "f " << (fn.qual_name.empty() ? "_" : fn.qual_name) << " "
          << (fn.class_name.empty() ? "_" : fn.class_name) << " " << fn.line
          << " " << EncodeList(fn.params) << "\n";
      for (const LockAcq& a : fn.acquisitions) {
        out << "a " << a.lock << " " << a.line << " " << EncodeList(a.held)
            << "\n";
      }
      for (const CallSite& c : fn.calls) {
        out << "c " << c.callee << " " << c.line << " "
            << (c.chain.empty() ? "_" : c.chain) << " "
            << (c.deferred ? 1 : 0) << " " << EncodeList(c.held);
        // Per-argument atom lists, `;`-joined.
        out << " ";
        if (c.args.empty()) {
          out << "-";
        } else {
          for (size_t j = 0; j < c.args.size(); ++j) {
            if (j != 0) out << ";";
            out << EncodeList(c.args[j]);
          }
        }
        out << "\n";
      }
      for (const SinkSite& s : fn.sinks) {
        out << "s " << s.kind << " " << s.line << " " << EncodeList(s.atoms)
            << "\n";
      }
      if (!fn.return_atoms.empty()) {
        out << "r " << EncodeList(fn.return_atoms) << "\n";
      }
    }
  }
  return out.str();
}

bool ParseCache(const std::string& text, std::map<std::string, FileFacts>* out,
                std::string* error) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return true;  // empty = cold cache
  {
    const std::vector<std::string> f = SplitFields(line);
    if (f.size() != 2 || f[0] != "flb-analyze-cache" ||
        f[1] != std::to_string(kCacheVersion)) {
      return true;  // other version: cold cache, not an error
    }
  }
  FileFacts* file = nullptr;
  FnFacts* fn = nullptr;
  int lineno = 1;
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = "corrupt analyze cache at line " + std::to_string(lineno) +
               ": " + what;
    }
    out->clear();
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::vector<std::string> f = SplitFields(line);
    const std::string& tag = f[0];
    if (tag == "file") {
      if (f.size() != 3) return fail("bad file record");
      fn = nullptr;
      file = &(*out)[f[1]];
      file->path = f[1];
      file->content_hash = std::strtoull(f[2].c_str(), nullptr, 10);
      continue;
    }
    if (file == nullptr) return fail("record before any file");
    if (tag == "i") {
      if (f.size() != 4) return fail("bad include record");
      file->includes.push_back(
          IncludeDecl{f[1], f[2] == "1", std::atoi(f[3].c_str())});
    } else if (tag == "u") {
      if (f.size() != 2) return fail("bad unordered record");
      file->unordered_decls = DecodeList(f[1]);
    } else if (tag == "x") {
      if (f.size() != 4) return fail("bad suppression record");
      lint::Suppression supp;
      for (const std::string& r : DecodeList(f[2])) supp.rules.insert(r);
      supp.justified = f[3] == "1";
      file->suppressions[std::atoi(f[1].c_str())] = std::move(supp);
    } else if (tag == "f") {
      if (f.size() != 5) return fail("bad function record");
      file->functions.emplace_back();
      fn = &file->functions.back();
      fn->qual_name = f[1] == "_" ? "" : f[1];
      fn->class_name = f[2] == "_" ? "" : f[2];
      fn->line = std::atoi(f[3].c_str());
      fn->params = DecodeList(f[4]);
    } else if (tag == "a") {
      if (fn == nullptr || f.size() != 4) return fail("bad acq record");
      fn->acquisitions.push_back(
          LockAcq{f[1], std::atoi(f[2].c_str()), DecodeList(f[3])});
    } else if (tag == "c") {
      if (fn == nullptr || f.size() != 7) return fail("bad call record");
      CallSite c;
      c.callee = f[1];
      c.line = std::atoi(f[2].c_str());
      c.chain = f[3] == "_" ? "" : f[3];
      c.deferred = f[4] == "1";
      c.held = DecodeList(f[5]);
      if (f[6] != "-") {
        std::string cur;
        for (char ch : f[6]) {
          if (ch == ';') {
            c.args.push_back(DecodeList(cur));
            cur.clear();
          } else {
            cur += ch;
          }
        }
        c.args.push_back(DecodeList(cur));
      }
      fn->calls.push_back(std::move(c));
    } else if (tag == "s") {
      if (fn == nullptr || f.size() != 4) return fail("bad sink record");
      fn->sinks.push_back(
          SinkSite{f[1], std::atoi(f[2].c_str()), DecodeList(f[3])});
    } else if (tag == "r") {
      if (fn == nullptr || f.size() != 2) return fail("bad return record");
      fn->return_atoms = DecodeList(f[1]);
    } else {
      return fail("unknown record tag");
    }
  }
  return true;
}

bool LoadCache(const std::string& path, std::map<std::string, FileFacts>* out,
               std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return true;  // missing cache = cold start
  std::ostringstream text;
  text << in.rdbuf();
  return ParseCache(text.str(), out, error);
}

bool SaveCache(const std::string& path, const std::vector<FileFacts>& facts,
               std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot write analyze cache " + path;
    return false;
  }
  out << SerializeCache(facts);
  if (!out) {
    if (error != nullptr) *error = "short write to analyze cache " + path;
    return false;
  }
  return true;
}

}  // namespace flb::analyze
