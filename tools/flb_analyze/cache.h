// Incremental facts cache for flb_analyze.
//
// Facts extraction (tokenize + parse + CFG + local taint fixpoint) is the
// expensive per-file step; the global passes are cheap. The cache persists
// every file's FileFacts in a versioned text format keyed on (normalized
// path, FNV-1a content hash): a warm run re-extracts only files whose
// content changed and replays the global passes over the mix of cached and
// fresh facts. A version bump in the header line invalidates the whole
// cache, which is how facts-format changes stay safe; CI additionally keys
// its cache on the hash of the tool sources.
//
// The format is line-based: atoms, lock names, paths, and chains contain
// no whitespace by construction (see facts.h), so fields are space-
// separated, list elements comma-separated, `-` encodes an empty list and
// `_` an empty element.

#ifndef FLB_TOOLS_FLB_ANALYZE_CACHE_H_
#define FLB_TOOLS_FLB_ANALYZE_CACHE_H_

#include <map>
#include <string>
#include <vector>

#include "tools/flb_analyze/facts.h"

namespace flb::analyze {

// Bumped whenever FileFacts or the serialization changes.
inline constexpr int kCacheVersion = 1;

// Serializes facts for all files into the cache text format.
std::string SerializeCache(const std::vector<FileFacts>& facts);

// Parses a cache produced by SerializeCache into `out`, keyed by
// normalized path. A wrong version is not an error — the cache is simply
// empty (cold). Returns false with `error` set only on a corrupt body.
bool ParseCache(const std::string& text, std::map<std::string, FileFacts>* out,
                std::string* error);

// File-level wrappers. LoadCache treats a missing file as an empty cache.
bool LoadCache(const std::string& path, std::map<std::string, FileFacts>* out,
               std::string* error);
bool SaveCache(const std::string& path, const std::vector<FileFacts>& facts,
               std::string* error);

}  // namespace flb::analyze

#endif  // FLB_TOOLS_FLB_ANALYZE_CACHE_H_
