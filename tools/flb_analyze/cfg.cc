#include "tools/flb_analyze/cfg.h"

#include <algorithm>

namespace flb::analyze {

namespace {

using lint::Is;
using lint::IsIdent;
using lint::SkipBalanced;
using lint::Token;

class Builder {
 public:
  Builder(const std::vector<Token>& t) : t_(t) {}

  Cfg Build(size_t begin, size_t end) {
    cfg_.blocks.emplace_back();  // entry = 0
    cfg_.blocks.emplace_back();  // exit = 1
    cfg_.entry = 0;
    cfg_.exit = 1;
    size_t body_end = end > begin ? end - 1 : begin;  // exclude closing '}'
    const size_t out = ParseSeq(begin + 1, body_end, cfg_.entry);
    Edge(out, cfg_.exit);
    return std::move(cfg_);
  }

 private:
  size_t NewBlock() {
    cfg_.blocks.emplace_back();
    return cfg_.blocks.size() - 1;
  }

  void Edge(size_t a, size_t b) {
    auto& s = cfg_.blocks[a].succs;
    if (std::find(s.begin(), s.end(), b) == s.end()) s.push_back(b);
  }

  void AppendStmt(size_t block, size_t begin, size_t end) {
    if (end <= begin) return;
    cfg_.blocks[block].stmts.push_back(Stmt{begin, end, t_[begin].line});
  }

  // Parses statements in [i, end); returns the block control flows out of.
  size_t ParseSeq(size_t i, size_t end, size_t cur) {
    while (i < end && i < t_.size()) {
      cur = ParseStmt(&i, end, cur);
    }
    return cur;
  }

  // Parses one statement starting at *i (advances it); returns the block
  // control continues in.
  size_t ParseStmt(size_t* i, size_t end, size_t cur) {
    const size_t at = *i;
    const std::string& x = t_[at].text;

    if (x == "{") {
      const size_t close = std::min(SkipBalanced(t_, at, "{", "}"), end);
      const size_t out = ParseSeq(at + 1, close > at ? close - 1 : at, cur);
      *i = close;
      return out;
    }

    if (x == "if" && Is(t_, at + 1, "(")) {
      const size_t cond_end = std::min(SkipBalanced(t_, at + 1, "(", ")"), end);
      // `if constexpr (...)` never has the parens at at+1; handled below by
      // the generic path since t_[at+1] would be "constexpr".
      AppendStmt(cur, at, cond_end);
      *i = cond_end;
      const size_t then_entry = NewBlock();
      Edge(cur, then_entry);
      const size_t then_out = ParseStmt(i, end, then_entry);
      const size_t join = NewBlock();
      Edge(then_out, join);
      if (*i < end && Is(t_, *i, "else")) {
        ++*i;
        const size_t else_entry = NewBlock();
        Edge(cur, else_entry);
        const size_t else_out = ParseStmt(i, end, else_entry);
        Edge(else_out, join);
      } else {
        Edge(cur, join);
      }
      return join;
    }

    if ((x == "while" || x == "for") && Is(t_, at + 1, "(")) {
      const size_t cond_end = std::min(SkipBalanced(t_, at + 1, "(", ")"), end);
      const size_t header = NewBlock();
      Edge(cur, header);
      AppendStmt(header, at, cond_end);
      *i = cond_end;
      const size_t exit = NewBlock();
      loops_.push_back({header, exit});
      const size_t body_entry = NewBlock();
      Edge(header, body_entry);
      const size_t body_out = ParseStmt(i, end, body_entry);
      Edge(body_out, header);
      Edge(header, exit);
      loops_.pop_back();
      return exit;
    }

    if (x == "do") {
      ++*i;
      const size_t body_entry = NewBlock();
      Edge(cur, body_entry);
      const size_t exit = NewBlock();
      loops_.push_back({body_entry, exit});
      const size_t body_out = ParseStmt(i, end, body_entry);
      loops_.pop_back();
      // `while (cond);` tail.
      if (*i < end && Is(t_, *i, "while") && Is(t_, *i + 1, "(")) {
        const size_t cond_end =
            std::min(SkipBalanced(t_, *i + 1, "(", ")"), end);
        AppendStmt(body_out, *i, cond_end);
        *i = cond_end;
        if (*i < end && Is(t_, *i, ";")) ++*i;
      }
      Edge(body_out, body_entry);
      Edge(body_out, exit);
      return exit;
    }

    if (x == "switch" && Is(t_, at + 1, "(")) {
      const size_t cond_end = std::min(SkipBalanced(t_, at + 1, "(", ")"), end);
      AppendStmt(cur, at, cond_end);
      *i = cond_end;
      const size_t exit = NewBlock();
      loops_.push_back({0, exit});  // break target only
      const size_t body_out = ParseStmt(i, end, cur);
      loops_.pop_back();
      Edge(body_out, exit);
      Edge(cur, exit);
      return exit;
    }

    if (x == "case" || x == "default") {
      size_t j = at;
      while (j < end && !Is(t_, j, ":")) ++j;
      *i = j < end ? j + 1 : end;
      return cur;
    }

    if (x == "return" || x == "co_return") {
      const size_t semi = FindSemicolon(at, end);
      AppendStmt(cur, at, semi);
      Edge(cur, cfg_.exit);
      *i = semi < end ? semi + 1 : end;
      return NewBlock();  // dead continuation
    }

    if (x == "break" || x == "continue") {
      *i = at + 1 < end && Is(t_, at + 1, ";") ? at + 2 : at + 1;
      if (!loops_.empty()) {
        if (x == "break") {
          Edge(cur, loops_.back().exit);
        } else if (loops_.back().header != 0) {
          Edge(cur, loops_.back().header);
        }
      }
      return NewBlock();  // dead continuation
    }

    if (x == "else") {  // stray else (shouldn't happen); skip token
      *i = at + 1;
      return cur;
    }

    // Default: one expression/declaration statement up to the terminating
    // ';' at bracket depth zero (lambdas and brace-inits stay inside).
    const size_t semi = FindSemicolon(at, end);
    AppendStmt(cur, at, semi);
    *i = semi < end ? semi + 1 : end;
    return cur;
  }

  size_t FindSemicolon(size_t i, size_t end) const {
    int depth = 0;
    for (size_t j = i; j < end; ++j) {
      const std::string& x = t_[j].text;
      if (x == "(" || x == "{" || x == "[") ++depth;
      if (x == ")" || x == "}" || x == "]") --depth;
      if (x == ";" && depth <= 0) return j;
    }
    return end;
  }

  struct Loop {
    size_t header;
    size_t exit;
  };

  const std::vector<Token>& t_;
  Cfg cfg_;
  std::vector<Loop> loops_;
};

}  // namespace

std::vector<Stmt> Cfg::Statements() const {
  std::vector<Stmt> out;
  for (const Block& b : blocks) {
    out.insert(out.end(), b.stmts.begin(), b.stmts.end());
  }
  std::sort(out.begin(), out.end(),
            [](const Stmt& a, const Stmt& b) { return a.begin < b.begin; });
  return out;
}

Cfg BuildCfg(const std::vector<lint::Token>& tokens, size_t begin,
             size_t end) {
  return Builder(tokens).Build(begin, end);
}

}  // namespace flb::analyze
