// Per-function control-flow graph over the shared token stream.
//
// Each function body is segmented into statements (token ranges) grouped
// into basic blocks with successor edges for if/else, while/for/do loops,
// switch, and return/break/continue. The taint pass iterates the statement
// set to a fixpoint (its transfer functions are union-only, so chaotic
// iteration over the blocks converges to the same answer as a worklist
// over the edges); the edges make the graph a genuine CFG for passes that
// need reachability. Statements containing nested braces (lambdas,
// brace-initializers, local structs) stay single statements.

#ifndef FLB_TOOLS_FLB_ANALYZE_CFG_H_
#define FLB_TOOLS_FLB_ANALYZE_CFG_H_

#include <cstddef>
#include <vector>

#include "tools/flb_lint/token.h"

namespace flb::analyze {

struct Stmt {
  size_t begin = 0;  // token range [begin, end)
  size_t end = 0;
  int line = 0;
};

struct Block {
  std::vector<Stmt> stmts;
  std::vector<size_t> succs;
};

struct Cfg {
  std::vector<Block> blocks;
  size_t entry = 0;
  size_t exit = 0;

  // All statements in token order, across blocks (the iteration order the
  // fixpoint passes use).
  std::vector<Stmt> Statements() const;
};

// Builds the CFG for a body token range: `begin` is the index of the
// opening '{', `end` the index just past the matching '}'.
Cfg BuildCfg(const std::vector<lint::Token>& tokens, size_t begin,
             size_t end);

}  // namespace flb::analyze

#endif  // FLB_TOOLS_FLB_ANALYZE_CFG_H_
