#include "tools/flb_analyze/facts.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "tools/flb_analyze/cfg.h"

namespace flb::analyze {

namespace {

using lint::Is;
using lint::IsIdent;
using lint::SkipBalanced;
using lint::Token;

// ---------------------------------------------------------------------------
// Source / sink vocabularies.
// ---------------------------------------------------------------------------

// Identifiers that name a wall-clock read wherever they appear.
const std::set<std::string>& WallAlways() {
  static const std::set<std::string> s = {
      "system_clock", "steady_clock",  "high_resolution_clock",
      "gettimeofday", "clock_gettime", "timespec_get",
      "localtime",    "gmtime",        "mktime",
      "WallTimer"};
  return s;
}
// ...and the ones that only count when called (`time(...)`), so a member
// or accessor named `time`/`clock` stays clean.
const std::set<std::string>& WallCallOnly() {
  static const std::set<std::string> s = {"time", "clock",
                                          "ElapsedSeconds"};
  return s;
}
const std::set<std::string>& EntropyAlways() {
  static const std::set<std::string> s = {
      "random_device", "mt19937",  "mt19937_64", "default_random_engine",
      "minstd_rand",   "drand48",  "lrand48",    "mrand48"};
  return s;
}
const std::set<std::string>& EntropyCallOnly() {
  static const std::set<std::string> s = {"rand", "srand", "random"};
  return s;
}
// Declaring a variable of one of these types taints it at birth.
const std::set<std::string>& TaintedTypes() {
  static const std::set<std::string> s = {
      "WallTimer", "mt19937", "mt19937_64", "random_device",
      "default_random_engine", "minstd_rand"};
  return s;
}
const std::set<std::string>& UnorderedTypes() {
  static const std::set<std::string> s = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return s;
}
const std::set<std::string>& SerializeSinks() {
  static const std::set<std::string> s = {
      "PutU32",         "PutU64",          "PutDouble",
      "PutString",      "PutBigInt",       "PutBigIntFixed",
      "PutDoubleVector", "PutBigIntBatchFixed", "PutBytes"};
  return s;
}
const std::set<std::string>& StmtKeywords() {
  static const std::set<std::string> s = {
      "if",     "for",    "while",  "switch",   "return", "sizeof",
      "catch",  "throw",  "new",    "delete",   "case",   "goto",
      "do",     "else",   "co_return", "co_await", "co_yield",
      "static_assert",    "assert", "decltype", "alignof", "typeid",
      "operator"};
  return s;
}
const std::set<std::string>& CastKeywords() {
  static const std::set<std::string> s = {
      "static_cast", "const_cast", "dynamic_cast", "reinterpret_cast"};
  return s;
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool LooksLikeMutexName(const std::string& name) {
  const std::string low = Lower(name);
  return low == "mu" || low == "mu_" ||
         (low.size() >= 3 && low.compare(low.size() - 3, 3, "mu_") == 0) ||
         low.find("mutex") != std::string::npos ||
         low.find("lock_") != std::string::npos;
}

}  // namespace

uint64_t HashContent(const std::string& content) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : content) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string NormalizePath(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  const size_t pos = path.rfind("/src/");
  if (pos != std::string::npos) return path.substr(pos + 1);
  return path;
}

namespace {

// ---------------------------------------------------------------------------
// Per-function extraction.
// ---------------------------------------------------------------------------

class FnExtractor {
 public:
  FnExtractor(const std::vector<Token>& t, const FunctionDecl& decl,
              const std::set<std::string>& local_unordered)
      : t_(t), decl_(decl), local_unordered_(local_unordered) {
    out_.qual_name = decl.qual_name;
    out_.class_name = decl.class_name;
    out_.line = decl.line;
    out_.params = decl.params;
    for (size_t i = 0; i < decl.params.size(); ++i) {
      if (!decl.params[i].empty()) {
        param_index_[decl.params[i]] = i;
      }
    }
  }

  FnFacts Run() {
    WalkLocksAndCalls();
    const Cfg cfg = BuildCfg(t_, decl_.body_begin, decl_.body_end);
    const std::vector<Stmt> stmts = cfg.Statements();
    // Union-only transfer functions: iterate the statement set until the
    // local taint map stops changing.
    for (int round = 0; round < 8; ++round) {
      if (!TaintRound(stmts)) break;
    }
    EmitSinksAndReturns(stmts);
    FillCallArgs();
    return std::move(out_);
  }

 private:
  // Qualifies a lock expression ("mu_", "other.mu_", "this->mu_") with the
  // enclosing class so the same member names one node per class.
  std::string QualifyLock(const std::string& expr) const {
    std::string e = expr;
    if (e.rfind("this.", 0) == 0) e = e.substr(5);
    const std::string owner =
        decl_.class_name.empty() ? decl_.qual_name : decl_.class_name;
    return owner + "::" + e;
  }

  // Collects the dotted identifier chain inside a paren range, e.g.
  // `(&other.mu_)` -> "other.mu_".
  std::string LockExpr(size_t open, size_t close) const {
    std::string expr;
    for (size_t j = open + 1; j < close; ++j) {
      if (IsIdent(t_, j)) {
        if (!expr.empty()) expr += '.';
        expr += t_[j].text;
      }
    }
    return expr;
  }

  std::vector<std::string> HeldNames() const {
    std::vector<std::string> held;
    held.reserve(active_locks_.size());
    for (const auto& l : active_locks_) held.push_back(l.name);
    return held;
  }

  // Lowercased receiver chain of a call at token index i (the callee
  // identifier): `obs::MetricsRegistry::Global().Count(` -> the chain for
  // `Count` is "metricsregistry.global".
  std::string ChainOf(size_t i) const {
    std::string chain;
    size_t j = i;
    while (j >= 2) {
      const std::string& sep = t_[j - 1].text;
      if (sep != "." && sep != "->" && sep != "::") break;
      size_t prev = j - 2;
      if (t_[prev].text == ")") {
        // Back-skip a balanced call: `Global()` / `clock()`.
        int depth = 0;
        size_t k = prev;
        while (true) {
          if (t_[k].text == ")") ++depth;
          if (t_[k].text == "(" && --depth == 0) break;
          if (k == 0) return chain;
          --k;
        }
        if (k == 0 || !IsIdent(t_, k - 1)) return chain;
        prev = k - 1;
      }
      if (!IsIdent(t_, prev)) break;
      if (t_[prev].text != "this") {
        chain = chain.empty() ? Lower(t_[prev].text)
                              : Lower(t_[prev].text) + "." + chain;
      }
      j = prev;
    }
    return chain;
  }

  // Lambda body token ranges within the function body whose execution is
  // NOT synchronous with this function. A `[` opens a lambda-introducer
  // when it cannot be a subscript (no ident/`)`/`]` before it) and is not
  // an attribute (`[[`). A lambda bound to a local name that the body
  // later calls (`auto run = [&]{...}; ... run(i);`), or invoked
  // immediately (`[&]{...}()`), runs right here — only lambdas that escape
  // un-invoked (thread bodies, stored callbacks) are deferred.
  void FindLambdaBodies() {
    for (size_t i = decl_.body_begin; i < decl_.body_end; ++i) {
      if (t_[i].text != "[" || Is(t_, i + 1, "[")) continue;
      if (i > 0 && (IsIdent(t_, i - 1) || t_[i - 1].text == ")" ||
                    t_[i - 1].text == "]")) {
        continue;
      }
      size_t j = SkipBalanced(t_, i, "[", "]");
      if (j >= decl_.body_end) continue;
      if (Is(t_, j, "(")) j = SkipBalanced(t_, j, "(", ")");
      // Specifiers / trailing return type before the body brace.
      size_t k = j;
      for (int guard = 0; k < decl_.body_end && guard < 12; ++guard, ++k) {
        const std::string& x = t_[k].text;
        if (x == "{" || x == ";" || x == "," || x == ")") break;
      }
      if (k >= decl_.body_end || !Is(t_, k, "{")) continue;
      const size_t body_end = SkipBalanced(t_, k, "{", "}");
      if (Is(t_, body_end, "(")) continue;  // immediately invoked
      if (i >= 2 && Is(t_, i - 1, "=") && IsIdent(t_, i - 2)) {
        const std::string& name = t_[i - 2].text;
        bool invoked = false;
        for (size_t m = decl_.body_begin; m + 1 < decl_.body_end; ++m) {
          if ((m < i - 2 || m >= body_end) && Is(t_, m + 1, "(") &&
              IsIdent(t_, m) && t_[m].text == name) {
            invoked = true;
            break;
          }
        }
        if (invoked) continue;  // called in this body: synchronous
      }
      lambdas_.emplace_back(k, body_end);
    }
  }

  bool InLambda(size_t i) const {
    for (const auto& [b, e] : lambdas_) {
      if (i > b && i < e) return true;
    }
    return false;
  }

  // One walk over the body: RAII/manual lock scopes, acquisitions with the
  // held set, and every call site with the held set. Argument atoms are
  // filled in later, after the taint fixpoint.
  void WalkLocksAndCalls() {
    FindLambdaBodies();
    int depth = 0;
    for (size_t i = decl_.body_begin; i < decl_.body_end; ++i) {
      const std::string& x = t_[i].text;
      if (x == "{") {
        ++depth;
        continue;
      }
      if (x == "}") {
        while (!active_locks_.empty() && active_locks_.back().depth >= depth) {
          active_locks_.pop_back();
        }
        --depth;
        continue;
      }
      if (!IsIdent(t_, i)) continue;

      // RAII guards: `MutexLock l(mu_)`, `lock_guard<...> l(mu_)`.
      const bool raii = x == "MutexLock" || x == "lock_guard" ||
                        x == "unique_lock" || x == "scoped_lock" ||
                        x == "shared_lock";
      if (raii) {
        size_t j = i + 1;
        if (Is(t_, j, "<")) j = SkipBalanced(t_, j, "<", ">");
        if (IsIdent(t_, j) && Is(t_, j + 1, "(")) {
          const size_t close = SkipBalanced(t_, j + 1, "(", ")") - 1;
          const std::string expr = LockExpr(j + 1, close);
          if (!expr.empty()) {
            // A guard declared inside a lambda protects the lambda's own
            // execution, not this function's — skip it.
            if (!InLambda(i)) Acquire(QualifyLock(expr), t_[i].line, depth);
            i = close;
          }
        }
        continue;
      }

      // Manual lock()/unlock() on something that looks like a mutex.
      if ((x == "lock" || x == "Lock") && Is(t_, i + 1, "(") &&
          i >= 2 &&
          (t_[i - 1].text == "." || t_[i - 1].text == "->") &&
          IsIdent(t_, i - 2) && LooksLikeMutexName(t_[i - 2].text)) {
        if (!InLambda(i)) Acquire(QualifyLock(t_[i - 2].text), t_[i].line, depth);
        continue;
      }
      if ((x == "unlock" || x == "Unlock") && Is(t_, i + 1, "(") &&
          i >= 2 &&
          (t_[i - 1].text == "." || t_[i - 1].text == "->") &&
          IsIdent(t_, i - 2)) {
        const std::string name = QualifyLock(t_[i - 2].text);
        for (size_t k = active_locks_.size(); k-- > 0;) {
          if (active_locks_[k].name == name) {
            active_locks_.erase(active_locks_.begin() + k);
            break;
          }
        }
        continue;
      }

      // Call sites.
      if (!Is(t_, i + 1, "(")) continue;
      if (StmtKeywords().count(x) != 0 || CastKeywords().count(x) != 0) {
        continue;
      }
      std::string callee = x;
      if (i > decl_.body_begin) {
        const std::string& prev = t_[i - 1].text;
        if (prev == ">") continue;  // `vector<int> v(...)`: skip
        if (IsIdent(t_, i - 1) && StmtKeywords().count(prev) == 0 &&
            prev != "return") {
          // Declaration with ctor args: `Rng rng(seed)` — the call is to
          // the type's constructor.
          callee = prev;
          if (CastKeywords().count(callee) != 0) continue;
        }
      }
      PendingCall call;
      call.index = i;
      call.paren = i + 1;
      call.facts.callee = callee;
      call.facts.line = t_[i].line;
      call.facts.chain = ChainOf(i);
      call.facts.held = HeldNames();
      call.facts.deferred = InLambda(i);
      pending_calls_.push_back(std::move(call));
    }
  }

  void Acquire(const std::string& lock, int line, int depth) {
    out_.acquisitions.push_back(LockAcq{lock, line, HeldNames()});
    active_locks_.push_back(ActiveLock{lock, depth});
  }

  // ---- taint ---------------------------------------------------------

  // Atoms of an expression token range under the current taint map.
  std::vector<std::string> AtomsOf(size_t begin, size_t end) const {
    std::vector<std::string> atoms;
    auto add = [&](const std::string& a) {
      if (std::find(atoms.begin(), atoms.end(), a) == atoms.end()) {
        atoms.push_back(a);
      }
    };
    for (size_t j = begin; j < end && j < t_.size(); ++j) {
      if (t_[j].text == "reinterpret_cast" && Is(t_, j + 1, "<")) {
        const size_t close = SkipBalanced(t_, j + 1, "<", ">");
        for (size_t k = j + 2; k + 1 < close; ++k) {
          if (t_[k].text == "uintptr_t" || t_[k].text == "intptr_t" ||
              t_[k].text == "size_t") {
            add("src:pointer_order");
          }
        }
        continue;
      }
      if (!IsIdent(t_, j)) continue;
      const std::string& id = t_[j].text;
      const bool member =
          j > 0 && (t_[j - 1].text == "." || t_[j - 1].text == "->");
      const bool called = Is(t_, j + 1, "(");
      if (id == "hash" && Is(t_, j + 1, "<")) {
        const size_t close = SkipBalanced(t_, j + 1, "<", ">");
        for (size_t k = j + 2; k + 1 < close; ++k) {
          if (t_[k].text == "*") add("src:pointer_order");
        }
      }
      if ((!member && WallAlways().count(id) != 0) ||
          (called && WallCallOnly().count(id) != 0 &&
           (!member || id == "ElapsedSeconds"))) {
        add("src:wall_clock");
        continue;
      }
      if ((!member && EntropyAlways().count(id) != 0) ||
          (!member && called && EntropyCallOnly().count(id) != 0)) {
        add("src:entropy");
        continue;
      }
      if (member) {
        // Method calls contribute through their receiver's taint only.
        continue;
      }
      const auto p = param_index_.find(id);
      if (p != param_index_.end()) add("param:" + std::to_string(p->second));
      const auto v = taint_.find(id);
      if (v != taint_.end()) {
        for (const std::string& a : v->second) add(a);
      }
      if (called && StmtKeywords().count(id) == 0 &&
          CastKeywords().count(id) == 0) {
        add("call:" + id);
      }
    }
    return atoms;
  }

  bool AddTaint(const std::string& var, const std::vector<std::string>& atoms) {
    bool changed = false;
    auto& set = taint_[var];
    for (const std::string& a : atoms) {
      if (std::find(set.begin(), set.end(), a) == set.end()) {
        set.push_back(a);
        changed = true;
      }
    }
    return changed;
  }

  // Index of the first top-level `=` in [begin, end), or end.
  size_t FindAssign(size_t begin, size_t end) const {
    int depth = 0;
    for (size_t j = begin; j < end; ++j) {
      const std::string& x = t_[j].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      if (x == ")" || x == "]" || x == "}") --depth;
      if (x == "=" && depth == 0) return j;
      if (x == "<" && j + 1 < end && t_[j + 1].text == "=") return end;
    }
    return end;
  }

  bool TaintRound(const std::vector<Stmt>& stmts) {
    bool changed = false;
    for (const Stmt& s : stmts) {
      if (s.begin >= t_.size()) continue;
      const std::string& head = t_[s.begin].text;
      // Type-based taint: `WallTimer timer;` etc.
      for (size_t j = s.begin; j + 1 < s.end; ++j) {
        if (IsIdent(t_, j) && TaintedTypes().count(t_[j].text) != 0 &&
            IsIdent(t_, j + 1)) {
          const char* atom = t_[j].text == "WallTimer" ? "src:wall_clock"
                                                       : "src:entropy";
          changed |= AddTaint(t_[j + 1].text, {atom});
        }
      }
      if (head == "for" && Is(t_, s.begin + 1, "(")) {
        changed |= RangeFor(s) || changed;
        continue;
      }
      if (head == "return") continue;  // handled in the emit phase
      const size_t eq = FindAssign(s.begin, s.end);
      if (eq == s.end || eq + 1 >= s.end) continue;
      const std::vector<std::string> rhs = AtomsOf(eq + 1, s.end);
      if (rhs.empty()) continue;
      // Assignment target: the last identifier before `=` (skipping a
      // trailing compound-op fragment like `+`).
      std::string target;
      for (size_t j = s.begin; j < eq; ++j) {
        if (IsIdent(t_, j)) target = t_[j].text;
      }
      if (target.empty()) continue;
      // For member writes `base.field = ...`, taint the base object.
      for (size_t j = s.begin; j < eq; ++j) {
        if (t_[j].text == "." || t_[j].text == "->") {
          if (j > s.begin && IsIdent(t_, j - 1)) target = t_[j - 1].text;
          break;
        }
      }
      changed |= AddTaint(target, rhs);
    }
    return changed;
  }

  bool RangeFor(const Stmt& s) {
    const size_t close = SkipBalanced(t_, s.begin + 1, "(", ")");
    int depth = 0;
    size_t colon = 0;
    for (size_t j = s.begin + 1; j + 1 < close; ++j) {
      const std::string& x = t_[j].text;
      if (x == "(" || x == "<" || x == "[") ++depth;
      if (x == ")" || x == ">" || x == "]") --depth;
      if (x == ":" && depth == 1) {
        colon = j;
        break;
      }
    }
    if (colon == 0) return false;
    std::string var;
    for (size_t j = s.begin + 1; j < colon; ++j) {
      if (IsIdent(t_, j)) var = t_[j].text;
    }
    if (var.empty()) return false;
    std::vector<std::string> atoms = AtomsOf(colon + 1, close - 1);
    for (size_t j = colon + 1; j + 1 < close; ++j) {
      if (!IsIdent(t_, j)) continue;
      if (local_unordered_.count(t_[j].text) != 0) {
        atoms.push_back("src:unordered_iter");
      } else {
        atoms.push_back("iter:" + t_[j].text);
      }
    }
    return AddTaint(var, atoms);
  }

  void EmitSinksAndReturns(const std::vector<Stmt>& stmts) {
    for (const Stmt& s : stmts) {
      if (s.begin >= t_.size()) continue;
      if (t_[s.begin].text == "return") {
        for (const std::string& a : AtomsOf(s.begin + 1, s.end)) {
          if (std::find(out_.return_atoms.begin(), out_.return_atoms.end(),
                        a) == out_.return_atoms.end()) {
            out_.return_atoms.push_back(a);
          }
        }
        continue;
      }
      // RunReport field writes: `report.total_seconds = ...`.
      const size_t eq = FindAssign(s.begin, s.end);
      if (eq != s.end && eq + 1 < s.end) {
        for (size_t j = s.begin; j < eq; ++j) {
          if (t_[j].text == "." || t_[j].text == "->") {
            if (j > s.begin && IsIdent(t_, j - 1) &&
                Lower(t_[j - 1].text).find("report") != std::string::npos) {
              const std::vector<std::string> atoms = AtomsOf(eq + 1, s.end);
              if (!atoms.empty()) {
                out_.sinks.push_back(SinkSite{"report", s.line, atoms});
              }
            }
            break;
          }
        }
      }
    }
  }

  void FillCallArgs() {
    for (PendingCall& call : pending_calls_) {
      const size_t close = SkipBalanced(t_, call.paren, "(", ")");
      // Split top-level arguments.
      int depth = 0;
      size_t arg_start = call.paren + 1;
      for (size_t j = call.paren; j < close; ++j) {
        const std::string& x = t_[j].text;
        if (x == "(" || x == "<" || x == "[" || x == "{") ++depth;
        if (x == ")" || x == ">" || x == "]" || x == "}") --depth;
        const bool at_end = j + 1 == close;
        if ((x == "," && depth == 1) || at_end) {
          const size_t arg_end = at_end ? close - 1 : j;
          if (arg_end > arg_start) {
            call.facts.args.push_back(AtomsOf(arg_start, arg_end));
          } else if (!at_end || !call.facts.args.empty()) {
            call.facts.args.emplace_back();
          }
          arg_start = j + 1;
        }
      }
      ClassifySink(call.facts);
      out_.calls.push_back(std::move(call.facts));
    }
  }

  void ClassifySink(const CallSite& call) {
    std::vector<std::string> atoms;
    for (const auto& arg : call.args) {
      for (const std::string& a : arg) {
        if (std::find(atoms.begin(), atoms.end(), a) == atoms.end()) {
          atoms.push_back(a);
        }
      }
    }
    std::string kind;
    if (call.callee == "ChargeSpan" ||
        (call.callee == "Charge" &&
         call.chain.find("clock") != std::string::npos)) {
      kind = "charge";
    } else if (SerializeSinks().count(call.callee) != 0) {
      kind = "serialize";
    } else if (call.callee == "Rng" ||
               (call.callee == "ForStream" &&
                call.chain.find("rng") != std::string::npos)) {
      kind = "rng_seed";
    }
    if (!kind.empty() && !atoms.empty()) {
      out_.sinks.push_back(SinkSite{kind, call.line, atoms});
    }
  }

  struct ActiveLock {
    std::string name;
    int depth = 0;
  };
  struct PendingCall {
    size_t index = 0;
    size_t paren = 0;
    CallSite facts;
  };

  const std::vector<Token>& t_;
  const FunctionDecl& decl_;
  const std::set<std::string>& local_unordered_;
  FnFacts out_;
  std::vector<std::pair<size_t, size_t>> lambdas_;
  std::vector<ActiveLock> active_locks_;
  std::vector<PendingCall> pending_calls_;
  std::map<std::string, size_t> param_index_;
  std::map<std::string, std::vector<std::string>> taint_;
};

}  // namespace

FileFacts ExtractFacts(const std::string& path, const std::string& content) {
  FileFacts facts;
  facts.path = NormalizePath(path);
  facts.content_hash = HashContent(content);

  std::vector<Token> tokens;
  lint::Tokenize(content, &tokens, &facts.suppressions);
  ParsedFile parsed = ParseFile(tokens);
  facts.includes = std::move(parsed.includes);

  // Names declared with an unordered container type anywhere in the file
  // (members included): feeds the global index resolving iter:<name>.
  std::set<std::string> unordered;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsIdent(tokens, i) || UnorderedTypes().count(tokens[i].text) == 0) {
      continue;
    }
    if (!Is(tokens, i + 1, "<")) continue;
    size_t j = SkipBalanced(tokens, i + 1, "<", ">");
    while (j < tokens.size() &&
           (tokens[j].text == "&" || tokens[j].text == "*" ||
            tokens[j].text == "const")) {
      ++j;
    }
    if (IsIdent(tokens, j)) unordered.insert(tokens[j].text);
  }
  facts.unordered_decls.assign(unordered.begin(), unordered.end());

  for (const FunctionDecl& fn : parsed.functions) {
    facts.functions.push_back(FnExtractor(tokens, fn, unordered).Run());
  }
  return facts;
}

}  // namespace flb::analyze
