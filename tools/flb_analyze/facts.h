// Per-file facts for flb_analyze's interprocedural passes.
//
// A file's facts are everything the global analyses need, already reduced
// to serializable records: the include list (FLB009), per-function lock
// acquisitions and call sites with the set of locks held (FLB007), and
// per-function taint atoms — sources appearing in expressions, sink call
// sites with the atoms feeding each argument, and the atoms flowing into
// the return value (FLB008). Extraction runs the shared tokenizer, the
// declaration parser, the per-function CFG, and a local union-only taint
// fixpoint; nothing here looks at any other file, which is what makes the
// facts cacheable per (path, content-hash) in the incremental cache.
//
// Atom vocabulary (no whitespace, so facts serialize as space-separated
// fields):
//   src:wall_clock | src:entropy | src:pointer_order | src:unordered_iter
//       a determinism-taint source appearing directly in the expression
//   call:<name>   value returned by a call to <name> (resolved globally)
//   param:<i>     value of the i-th declared parameter (0-based)
//   iter:<name>   element of a range-for over <name>; tainted iff <name>
//                 is declared as an unordered container anywhere in the
//                 translation set (resolved globally)

#ifndef FLB_TOOLS_FLB_ANALYZE_FACTS_H_
#define FLB_TOOLS_FLB_ANALYZE_FACTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tools/flb_analyze/parser.h"
#include "tools/flb_lint/token.h"

namespace flb::analyze {

struct LockAcq {
  std::string lock;  // "Network::mu_", "Free::local_mu"
  int line = 0;
  std::vector<std::string> held;  // locks already held at this acquisition
};

struct CallSite {
  std::string callee;  // unqualified name as written
  int line = 0;
  std::string chain;  // lowercased receiver chain ("clock"/"metrics"/"")
  std::vector<std::string> held;  // locks held at the call
  std::vector<std::vector<std::string>> args;  // per-argument atoms
  // True when the call sits inside a lambda body: it runs whenever the
  // lambda runs (possibly on another thread, e.g. a spawned worker loop),
  // so lock-discipline passes must not treat it as executing under the
  // enclosing function's locks.
  bool deferred = false;
};

struct SinkSite {
  std::string kind;  // "charge" | "serialize" | "rng_seed" | "report"
  int line = 0;
  std::vector<std::string> atoms;  // union over the fed arguments
};

struct FnFacts {
  std::string qual_name;  // "Network::Send" / "Free"
  std::string class_name;
  int line = 0;
  std::vector<std::string> params;
  std::vector<LockAcq> acquisitions;
  std::vector<CallSite> calls;
  std::vector<SinkSite> sinks;
  std::vector<std::string> return_atoms;
};

struct FileFacts {
  std::string path;  // normalized ("src/..." when under a src tree)
  uint64_t content_hash = 0;
  std::vector<IncludeDecl> includes;
  std::vector<FnFacts> functions;
  // Names declared with std::unordered_{map,set,...} in this file (feeds
  // the global unordered-name index that resolves iter:<name> atoms).
  std::vector<std::string> unordered_decls;
  // Inline `// flb-lint: allow(FLB00x) reason` suppressions by line.
  lint::SuppressionMap suppressions;
};

// 64-bit FNV-1a, the content hash the incremental cache keys on.
uint64_t HashContent(const std::string& content);

// Normalizes separators and strips any prefix before the last "src/"
// component so baselines and caches are location-independent.
std::string NormalizePath(std::string path);

// Tokenizes, parses, and reduces one file to its facts.
FileFacts ExtractFacts(const std::string& path, const std::string& content);

}  // namespace flb::analyze

#endif  // FLB_TOOLS_FLB_ANALYZE_FACTS_H_
