// flb_analyze CLI. See analyze.h for the rule table and the model.
//
// Usage:
//   flb_analyze [--root DIR] [--exceptions FILE] [--baseline FILE]
//               [--cache FILE] [--json PATH] [--sarif PATH]
//               [--write-baseline PATH] [--list-rules] [--quiet] [file...]
//
// With explicit files, analyzes exactly those as one translation set (the
// fixture-test entry point); otherwise walks --root (default: src).
// --write-baseline regenerates the reviewed baseline from the current
// findings (any --baseline is ignored for that run so accepted debt is
// not dropped). Exit codes: 0 clean, 1 new findings, 2 usage/IO error.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/flb_analyze/analyze.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--exceptions FILE] [--baseline FILE] "
               "[--cache FILE] [--json PATH] [--sarif PATH] "
               "[--write-baseline PATH] [--list-rules] [--quiet] [file...]\n",
               argv0);
  return 2;
}

bool WriteFile(const std::string& path, const std::string& content,
               const char* what) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "flb_analyze: cannot write %s %s\n", what,
                 path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = "src";
  std::string json_path, sarif_path, cache_path, baseline_out;
  bool quiet = false;
  std::vector<std::string> files;
  flb::analyze::Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::string error;
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      root = v;
    } else if (arg == "--exceptions") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (!flb::analyze::LoadExceptionsFile(v, &options.layering_exceptions,
                                            &error)) {
        std::fprintf(stderr, "flb_analyze: %s\n", error.c_str());
        return 2;
      }
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (!flb::analyze::LoadBaselineFile(v, &options.baseline, &error)) {
        std::fprintf(stderr, "flb_analyze: %s\n", error.c_str());
        return 2;
      }
    } else if (arg == "--cache") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      cache_path = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      json_path = v;
    } else if (arg == "--sarif") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      sarif_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      baseline_out = v;
    } else if (arg == "--list-rules") {
      for (const flb::lint::RuleInfo& rule : flb::analyze::Rules()) {
        std::printf("%s %-18s %s\n", rule.id, rule.name, rule.summary);
      }
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }

  // Regenerating the baseline must see *all* findings, including the ones
  // the stale baseline was hiding.
  if (!baseline_out.empty()) options.baseline.clear();

  flb::analyze::Report report;
  std::string error;
  if (!files.empty()) {
    std::vector<flb::lint::FileInput> inputs;
    for (const std::string& path : files) {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "flb_analyze: cannot read %s\n", path.c_str());
        return 2;
      }
      std::ostringstream content;
      content << in.rdbuf();
      inputs.push_back({path, content.str()});
    }
    report = flb::analyze::AnalyzeFiles(inputs, options);
  } else if (!flb::analyze::AnalyzeTree(root, options, cache_path, &report,
                                        &error)) {
    std::fprintf(stderr, "flb_analyze: %s\n", error.c_str());
    return 2;
  }

  for (const flb::analyze::Finding& f : report.findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
    for (const std::string& w : f.witness) {
      std::fprintf(stderr, "    %s\n", w.c_str());
    }
  }
  if (!quiet) {
    std::printf(
        "flb_analyze: %llu file(s), %llu function(s), %zu finding(s), "
        "%llu baselined, %llu suppressed (cache: %llu hit, %llu miss)\n",
        static_cast<unsigned long long>(report.files_scanned),
        static_cast<unsigned long long>(report.functions_analyzed),
        report.findings.size(),
        static_cast<unsigned long long>(report.baselined),
        static_cast<unsigned long long>(report.suppressed),
        static_cast<unsigned long long>(report.cache_hits),
        static_cast<unsigned long long>(report.cache_misses));
  }
  if (!json_path.empty() &&
      !WriteFile(json_path, flb::analyze::ReportToBenchJson(report) + "\n",
                 "json")) {
    return 2;
  }
  if (!sarif_path.empty() &&
      !WriteFile(sarif_path, flb::analyze::ReportToSarif(report) + "\n",
                 "sarif")) {
    return 2;
  }
  if (!baseline_out.empty()) {
    if (!WriteFile(baseline_out, flb::analyze::ReportToBaseline(report),
                   "baseline")) {
      return 2;
    }
    return 0;  // regenerating the baseline accepts the findings by design
  }
  return report.findings.empty() ? 0 : 1;
}
