#include "tools/flb_analyze/parser.h"

#include <cctype>
#include <set>

namespace flb::analyze {

namespace {

using lint::Is;
using lint::IsIdent;
using lint::IsString;
using lint::SkipBalanced;
using lint::Token;

const std::set<std::string>& StmtKeywords() {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",    "switch",   "return",
      "sizeof",   "catch",    "operator", "assert",   "static_assert",
      "decltype", "alignof",  "noexcept", "defined",  "co_return",
      "co_await", "co_yield", "throw",    "new",      "delete",
      "case",     "goto",     "do",       "else",     "typeid"};
  return kw;
}

const std::set<std::string>& TypeKeywords() {
  static const std::set<std::string> kw = {
      "int",      "double",   "float",    "char",   "bool",    "void",
      "auto",     "unsigned", "signed",   "long",   "short",   "const",
      "volatile", "size_t",   "uint64_t", "uint32_t", "uint16_t",
      "uint8_t",  "int64_t",  "int32_t",  "int16_t", "int8_t", "wchar_t"};
  return kw;
}

bool IsAllCaps(const std::string& s) {
  bool has_alpha = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha;
}

// Parameter names from the token range strictly inside the parens.
std::vector<std::string> ExtractParams(const std::vector<Token>& t,
                                       size_t begin, size_t end) {
  std::vector<std::string> params;
  size_t seg_start = begin;
  int depth = 0;
  auto flush = [&](size_t seg_end) {
    // Strip a trailing default value.
    size_t stop = seg_end;
    int d = 0;
    for (size_t j = seg_start; j < seg_end; ++j) {
      const std::string& x = t[j].text;
      if (x == "(" || x == "<" || x == "[" || x == "{") ++d;
      if (x == ")" || x == ">" || x == "]" || x == "}") --d;
      if (x == "=" && d == 0) {
        stop = j;
        break;
      }
    }
    if (stop == seg_start) return;  // empty segment
    if (stop == seg_start + 1 && t[seg_start].text == "void") return;
    std::string name;
    for (size_t j = seg_start; j < stop; ++j) {
      if (t[j].kind == Token::Kind::kIdent) name = t[j].text;
      if (t[j].text == "[") break;  // array suffix: name precedes it
    }
    if (TypeKeywords().count(name) != 0 || IsAllCaps(name)) name.clear();
    params.push_back(name);
  };
  for (size_t j = begin; j < end; ++j) {
    const std::string& x = t[j].text;
    if (x == "(" || x == "<" || x == "[" || x == "{") ++depth;
    if (x == ")" || x == ">" || x == "]" || x == "}") --depth;
    if (x == "," && depth == 0) {
      flush(j);
      seg_start = j + 1;
    }
  }
  flush(end);
  return params;
}

struct Scope {
  enum class Kind { kNamespace, kClass, kOther };
  Kind kind = Kind::kOther;
  std::string name;
};

class Parser {
 public:
  explicit Parser(const std::vector<Token>& t) : t_(t) {}

  ParsedFile Run() {
    size_t i = 0;
    while (i < t_.size()) i = Step(i);
    return std::move(out_);
  }

 private:
  // Processes the construct starting at token i; returns the next index.
  size_t Step(size_t i) {
    const Token& tok = t_[i];
    if (tok.text == "#") return Directive(i);
    if (tok.text == "template" && Is(t_, i + 1, "<")) {
      return SkipBalanced(t_, i + 1, "<", ">");
    }
    if (tok.text == "namespace") return Namespace(i);
    if (tok.text == "class" || tok.text == "struct" || tok.text == "union") {
      return ClassDecl(i);
    }
    if (tok.text == "enum") return EnumDecl(i);
    if (tok.text == "{") {
      scopes_.push_back(Scope{Scope::Kind::kOther, ""});
      return i + 1;
    }
    if (tok.text == "}") {
      if (!scopes_.empty()) scopes_.pop_back();
      return i + 1;
    }
    if (tok.text == "=") {
      // Namespace/class-scope initializer: skip to the terminating ';' so
      // brace-initializers don't disturb scope tracking.
      return SkipToSemicolon(i);
    }
    if (IsIdent(t_, i) && Is(t_, i + 1, "(") &&
        StmtKeywords().count(tok.text) == 0) {
      return Candidate(i);
    }
    return i + 1;
  }

  size_t Directive(size_t i) {
    const int line = t_[i].line;
    if (Is(t_, i + 1, "include")) {
      IncludeDecl inc;
      inc.line = line;
      if (IsString(t_, i + 2)) {
        inc.target = t_[i + 2].text;
        out_.includes.push_back(std::move(inc));
        return i + 3;
      }
      if (Is(t_, i + 2, "<")) {
        size_t j = i + 3;
        for (; j < t_.size() && t_[j].text != ">" && t_[j].line == line; ++j) {
          inc.target += t_[j].text;
        }
        inc.angled = true;
        out_.includes.push_back(std::move(inc));
        return j + 1;
      }
      return i + 2;
    }
    if (!t_[i].text.empty()) {
      // Any other directive: consume the rest of its (first) line. Multi-
      // line macro bodies re-enter the stream; they are balanced in
      // practice, so scope tracking survives.
      size_t j = i + 1;
      while (j < t_.size() && t_[j].line == line) ++j;
      return j;
    }
    return i + 1;
  }

  size_t Namespace(size_t i) {
    size_t j = i + 1;
    std::string name;
    while (IsIdent(t_, j) || Is(t_, j, "::")) {
      if (IsIdent(t_, j)) name = t_[j].text;
      ++j;
    }
    if (Is(t_, j, "{")) {
      scopes_.push_back(Scope{Scope::Kind::kNamespace, name});
      return j + 1;
    }
    if (Is(t_, j, "=")) return SkipToSemicolon(j);  // namespace alias
    return j;
  }

  size_t ClassDecl(size_t i) {
    // Scan to the first top-level '{' (definition), ';' (forward decl), or
    // '(' (e.g. a variable `struct X x(...)` — treat as other).
    std::string name;
    std::string caps_name;  // all-caps fallback: `class API` vs `FLB_EXPORT`
    int depth = 0;
    bool in_bases = false;
    for (size_t j = i + 1; j < t_.size(); ++j) {
      const std::string& x = t_[j].text;
      if (x == "<" || x == "(" || x == "[") ++depth;
      if (x == ">" || x == ")" || x == "]") --depth;
      if (depth > 0) continue;
      if (x == ":") in_bases = true;
      if (IsIdent(t_, j) && !in_bases && x != "final") {
        // All-caps idents are usually attribute macros (`class FLB_EXPORT
        // Foo`); prefer any mixed-case name, but an all-caps one is better
        // than leaving the scope anonymous (`class API`, `class A`).
        if (!IsAllCaps(x)) {
          name = x;
        } else {
          caps_name = x;
        }
      }
      if (x == "{") {
        scopes_.push_back(
            Scope{Scope::Kind::kClass, name.empty() ? caps_name : name});
        return j + 1;
      }
      if (x == ";" || x == "=") return j + 1;
    }
    return t_.size();
  }

  size_t EnumDecl(size_t i) {
    for (size_t j = i + 1; j < t_.size(); ++j) {
      if (t_[j].text == "{") return SkipBalanced(t_, j, "{", "}");
      if (t_[j].text == ";") return j + 1;
    }
    return t_.size();
  }

  size_t SkipToSemicolon(size_t i) {
    int depth = 0;
    for (size_t j = i; j < t_.size(); ++j) {
      const std::string& x = t_[j].text;
      if (x == "(" || x == "{" || x == "[") ++depth;
      if (x == ")" || x == "}" || x == "]") --depth;
      if (x == ";" && depth <= 0) return j + 1;
    }
    return t_.size();
  }

  // `i` is an identifier followed by '('. Decide whether this is a function
  // definition; record it and skip the body if so.
  size_t Candidate(size_t i) {
    const size_t paren_end = SkipBalanced(t_, i + 1, "(", ")");
    if (paren_end >= t_.size()) return i + 1;

    // Out-of-line qualification: `Class::Method(` — the ident right before
    // the final `::` names the class.
    std::string class_name;
    if (i >= 2 && Is(t_, i - 1, "::") && IsIdent(t_, i - 2)) {
      class_name = t_[i - 2].text;
    } else {
      for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        if (it->kind == Scope::Kind::kClass) {
          class_name = it->name;
          break;
        }
        if (it->kind == Scope::Kind::kOther) break;
      }
    }

    // Walk the post-parameter qualifiers looking for the body '{'.
    size_t k = paren_end;
    bool ctor_inits = false;
    for (size_t steps = 0; k < t_.size() && steps < 4096; ++steps) {
      const std::string& x = t_[k].text;
      if (x == "{") {
        if (ctor_inits && k > 0 &&
            (IsIdent(t_, k - 1) || t_[k - 1].text == ">")) {
          // Brace-initializer inside a member-init list: `: a_{1}`.
          k = SkipBalanced(t_, k, "{", "}");
          continue;
        }
        break;  // the body
      }
      if (x == ";" || x == "=") return k + 1;  // declaration / `= default`
      if (x == ":") {
        ctor_inits = true;
        ++k;
        continue;
      }
      if (x == "(") {
        k = SkipBalanced(t_, k, "(", ")");
        continue;
      }
      if (x == "[") {
        k = SkipBalanced(t_, k, "[", "]");
        continue;
      }
      if (x == "<") {
        k = SkipBalanced(t_, k, "<", ">");
        continue;
      }
      ++k;
    }
    if (k >= t_.size() || t_[k].text != "{") return paren_end;

    FunctionDecl fn;
    fn.name = t_[i].text;
    fn.class_name = class_name;
    fn.qual_name =
        class_name.empty() ? fn.name : class_name + "::" + fn.name;
    fn.line = t_[i].line;
    fn.body_begin = k;
    fn.body_end = SkipBalanced(t_, k, "{", "}");
    fn.params = ExtractParams(t_, i + 2, paren_end - 1);
    out_.functions.push_back(std::move(fn));
    return out_.functions.back().body_end;
  }

  const std::vector<Token>& t_;
  std::vector<Scope> scopes_;
  ParsedFile out_;
};

}  // namespace

ParsedFile ParseFile(const std::vector<lint::Token>& tokens) {
  return Parser(tokens).Run();
}

}  // namespace flb::analyze
