// Lightweight declaration/function-body parser for flb_analyze.
//
// Sits on the shared flb_lint tokenizer and recovers just enough structure
// for the interprocedural passes: the `#include` list, and every function
// *definition* with its qualified name, parameter names, and body token
// range. Namespaces, classes (including out-of-line `Class::Method`
// definitions), constructor member-initializer lists, template headers,
// and brace-initializers are handled; lambdas and local structs stay part
// of their enclosing function's body range (their calls are attributed to
// the enclosing function, which is the conservative choice for both the
// lock and the taint pass). No libclang, no preprocessor.

#ifndef FLB_TOOLS_FLB_ANALYZE_PARSER_H_
#define FLB_TOOLS_FLB_ANALYZE_PARSER_H_

#include <string>
#include <vector>

#include "tools/flb_lint/token.h"

namespace flb::analyze {

struct IncludeDecl {
  std::string target;  // as written: "src/obs/metrics.h" or <vector>
  bool angled = false;
  int line = 0;
};

struct FunctionDecl {
  std::string name;        // unqualified: "Send"
  std::string class_name;  // enclosing class, or "" for free functions
  std::string qual_name;   // "Network::Send" / "Send"
  int line = 0;
  size_t body_begin = 0;  // token index of the '{' opening the body
  size_t body_end = 0;    // token index just past the matching '}'
  std::vector<std::string> params;  // declared names; "" when unnamed
};

struct ParsedFile {
  std::vector<IncludeDecl> includes;
  std::vector<FunctionDecl> functions;
};

ParsedFile ParseFile(const std::vector<lint::Token>& tokens);

}  // namespace flb::analyze

#endif  // FLB_TOOLS_FLB_ANALYZE_PARSER_H_
