// flb_lint CLI. See lint.h for the rule table and suppression syntax.
//
// Usage:
//   flb_lint [--root DIR] [--allowlist FILE] [--json PATH] [--list-rules]
//            [--quiet] [file...]
//
// With explicit files, lints exactly those as one translation set (the
// fixture-test entry point); otherwise walks --root (default: src). Exit
// codes: 0 clean, 1 violations, 2 usage/IO error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/flb_lint/lint.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--allowlist FILE] [--json PATH] "
               "[--list-rules] [--quiet] [file...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = "src";
  std::string json_path;
  bool quiet = false;
  std::vector<std::string> files;
  flb::lint::Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      root = v;
    } else if (arg == "--allowlist") {
      const char* v = next();
      std::string error;
      if (v == nullptr) return Usage(argv[0]);
      if (!flb::lint::LoadAllowlistFile(v, &options.allowlist, &error)) {
        std::fprintf(stderr, "flb_lint: %s\n", error.c_str());
        return 2;
      }
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      json_path = v;
    } else if (arg == "--list-rules") {
      for (const flb::lint::RuleInfo& rule : flb::lint::Rules()) {
        std::printf("%s %-16s %s\n", rule.id, rule.name, rule.summary);
      }
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }

  flb::lint::Report report;
  std::string error;
  if (!files.empty()) {
    std::vector<flb::lint::FileInput> inputs;
    for (const std::string& path : files) {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "flb_lint: cannot read %s\n", path.c_str());
        return 2;
      }
      std::ostringstream content;
      content << in.rdbuf();
      inputs.push_back({path, content.str()});
    }
    report = flb::lint::LintFiles(inputs, options);
  } else if (!flb::lint::LintTree(root, options, &report, &error)) {
    std::fprintf(stderr, "flb_lint: %s\n", error.c_str());
    return 2;
  }

  for (const flb::lint::Violation& v : report.violations) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!quiet) {
    std::printf(
        "flb_lint: %llu file(s), %zu violation(s), %llu suppressed, "
        "%llu allowlisted\n",
        static_cast<unsigned long long>(report.files_scanned),
        report.violations.size(),
        static_cast<unsigned long long>(report.suppressed),
        static_cast<unsigned long long>(report.allowlisted));
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "flb_lint: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << flb::lint::ReportToBenchJson(report) << "\n";
  }
  return report.violations.empty() ? 0 : 1;
}
