#include "tools/flb_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "tools/flb_lint/token.h"

namespace flb::lint {

namespace {

// The tokenizer (comments/strings stripped, suppression directives
// harvested) lives in token.h, shared with tools/flb_analyze.

// ---------------------------------------------------------------------------
// The rule table.
// ---------------------------------------------------------------------------

constexpr const char* kWallClock = "FLB001";
constexpr const char* kEntropy = "FLB002";
constexpr const char* kUnorderedIter = "FLB003";
constexpr const char* kMutexAnnotation = "FLB004";
constexpr const char* kDiscardedStatus = "FLB005";
constexpr const char* kUnboundedRetry = "FLB006";

const std::set<std::string>& AnnotationMacros() {
  static const std::set<std::string> macros = {
      "FLB_GUARDED_BY",      "FLB_PT_GUARDED_BY", "FLB_REQUIRES",
      "FLB_ACQUIRE",         "FLB_RELEASE",       "FLB_TRY_ACQUIRE",
      "FLB_EXCLUDES",        "FLB_ACQUIRED_BEFORE",
      "FLB_ACQUIRED_AFTER"};
  return macros;
}

struct FileContext {
  std::string path;
  std::vector<Token> tokens;
  SuppressionMap suppressions;
};

class Linter {
 public:
  Linter(const Options& opts, Report* report)
      : opts_(opts), report_(report) {}

  // Pass 1 over every file: collect the names of functions declared to
  // return Status or Result<T> (rule FLB005's call index).
  void IndexStatusFunctions(const FileContext& f) {
    const auto& t = f.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsIdent(t, i)) continue;
      size_t name = 0;
      if (t[i].text == "Status") {
        // `Status Foo(` — skip qualified uses like `Status::OK`.
        if (IsIdent(t, i + 1) && Is(t, i + 2, "(")) name = i + 1;
      } else if (t[i].text == "Result" && Is(t, i + 1, "<")) {
        const size_t past = SkipBalanced(t, i + 1, "<", ">");
        if (past < t.size() && IsIdent(t, past) && Is(t, past + 1, "(")) {
          name = past;
        }
      }
      if (name != 0 && t[name].text != "operator") {
        status_fns_.insert(t[name].text);
      }
      // `void RecordEvent(` — a declaration of the same name with some
      // other return type makes the name ambiguous across the tree (the
      // index is name-based, not overload-resolved), so FLB005 must not
      // flag calls to it. Statement keywords (`return Foo(`) are calls,
      // not declarations.
      static const std::set<std::string> kStmtKeywords = {
          "return", "co_return", "co_await", "co_yield", "throw",
          "else",   "do",        "case",     "goto",     "new",
          "delete"};
      if (t[i].text != "Status" && t[i].text != "Result" &&
          kStmtKeywords.count(t[i].text) == 0 && IsIdent(t, i + 1) &&
          Is(t, i + 2, "(") && t[i + 1].text != "operator") {
        non_status_decls_.insert(t[i + 1].text);
      }
    }
  }

  void LintOne(const FileContext& f) {
    CheckWallClockAndEntropy(f);
    CheckUnorderedIteration(f);
    CheckMutexAnnotations(f);
    CheckDiscardedStatus(f);
    CheckUnboundedRetry(f);
  }

 private:
  // -- shared emission path (allowlist + suppression filtering) ------------

  bool Allowlisted(const std::string& rule, const std::string& path) const {
    for (const AllowEntry& e : opts_.allowlist) {
      if (e.rule != "*" && e.rule != rule) continue;
      if (path.size() >= e.path_suffix.size() &&
          path.compare(path.size() - e.path_suffix.size(),
                       e.path_suffix.size(), e.path_suffix) == 0) {
        return true;
      }
    }
    return false;
  }

  void Emit(const FileContext& f, int line, const char* rule,
            std::string message) {
    if (Allowlisted(rule, f.path)) {
      ++report_->allowlisted;
      return;
    }
    const auto it = f.suppressions.find(line);
    if (it != f.suppressions.end() && it->second.rules.count(rule) != 0) {
      if (it->second.justified) {
        ++report_->suppressed;
        return;
      }
      ++report_->unjustified_allows;
      message += " [allow() present but missing a justification]";
    }
    report_->violations.push_back(Violation{f.path, line, rule,
                                            std::move(message)});
  }

  // -- FLB001 / FLB002 -----------------------------------------------------

  void CheckWallClockAndEntropy(const FileContext& f) {
    static const std::set<std::string> kWallAlways = {
        "system_clock",  "steady_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "timespec_get",
        "localtime",     "gmtime",       "mktime"};
    static const std::set<std::string> kWallCallOnly = {"time", "clock"};
    static const std::set<std::string> kEntropyAlways = {
        "random_device", "mt19937", "mt19937_64", "default_random_engine",
        "minstd_rand",   "drand48", "lrand48",    "mrand48"};
    static const std::set<std::string> kEntropyCallOnly = {"rand", "srand",
                                                           "random"};
    static const std::set<std::string> kWallHeaders = {"ctime", "time.h",
                                                       "sys/time.h"};
    static const std::set<std::string> kEntropyHeaders = {"random"};

    const auto& t = f.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      // #include <header> bans.
      if (Is(t, i, "#") && Is(t, i + 1, "include") && Is(t, i + 2, "<")) {
        std::string header;
        for (size_t j = i + 3; j < t.size() && !Is(t, j, ">"); ++j) {
          header += t[j].text;
        }
        if (kWallHeaders.count(header) != 0) {
          Emit(f, t[i].line, kWallClock,
               "#include <" + header + ">: wall-clock APIs are banned in "
               "simulated paths (charge the SimClock; see common/timer.h)");
        }
        if (kEntropyHeaders.count(header) != 0) {
          Emit(f, t[i].line, kEntropy,
               "#include <" + header + ">: unseeded entropy is banned "
               "(derive randomness from common::Rng)");
        }
        continue;
      }
      if (!IsIdent(t, i)) continue;
      const std::string& id = t[i].text;
      const bool member_access =
          i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
      const bool called = Is(t, i + 1, "(");
      // `SimClock* clock() const` declares an accessor named clock — that is
      // declaration position (preceded by a type fragment), not a call to
      // the C library. Statement keywords (`return time(...)`) still count
      // as calls.
      static const std::set<std::string> kStmtKeywords = {
          "return", "co_return", "co_await", "co_yield", "throw",
          "else",   "do",        "case",     "goto",     "new",
          "delete"};
      const bool decl_position =
          i > 0 &&
          (t[i - 1].text == "*" || t[i - 1].text == "&" ||
           t[i - 1].text == ">" ||
           (IsIdent(t, i - 1) && kStmtKeywords.count(t[i - 1].text) == 0));
      const bool free_call = called && !decl_position;
      if (!member_access &&
          (kWallAlways.count(id) != 0 ||
           (free_call && kWallCallOnly.count(id) != 0))) {
        Emit(f, t[i].line, kWallClock,
             "wall-clock API '" + id + "' in a simulated path: charged time "
             "must come from the SimClock (wall timing belongs in "
             "common/timer.h)");
      }
      if (!member_access &&
          (kEntropyAlways.count(id) != 0 ||
           (free_call && kEntropyCallOnly.count(id) != 0))) {
        Emit(f, t[i].line, kEntropy,
             "entropy source '" + id + "' outside common/rng: unseeded "
             "randomness breaks bit-identical replay (use common::Rng / "
             "Rng::ForStream)");
      }
    }
  }

  // -- FLB003 --------------------------------------------------------------

  void CheckUnorderedIteration(const FileContext& f) {
    static const std::set<std::string> kUnorderedTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    const auto& t = f.tokens;

    // Pass 1: names declared with an unordered container type (variables,
    // members, and functions returning one).
    std::set<std::string> unordered_names;
    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsIdent(t, i) || kUnorderedTypes.count(t[i].text) == 0) continue;
      if (!Is(t, i + 1, "<")) continue;
      size_t j = SkipBalanced(t, i + 1, "<", ">");
      while (j < t.size() &&
             (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
        ++j;
      }
      if (IsIdent(t, j)) unordered_names.insert(t[j].text);
    }
    if (unordered_names.empty()) return;

    for (size_t i = 0; i < t.size(); ++i) {
      // Range-for whose range expression mentions an unordered name.
      if (IsIdent(t, i) && t[i].text == "for" && Is(t, i + 1, "(")) {
        const size_t past = SkipBalanced(t, i + 1, "(", ")");
        // Find the top-level ':' separating declaration from range.
        int depth = 0;
        size_t colon = 0;
        for (size_t j = i + 1; j + 1 < past; ++j) {
          if (t[j].text == "(" || t[j].text == "<" || t[j].text == "[") {
            ++depth;
          }
          if (t[j].text == ")" || t[j].text == ">" || t[j].text == "]") {
            --depth;
          }
          if (t[j].text == ":" && depth == 1) {
            colon = j;
            break;
          }
        }
        if (colon == 0) continue;
        for (size_t j = colon + 1; j + 1 < past; ++j) {
          if (IsIdent(t, j) && unordered_names.count(t[j].text) != 0) {
            Emit(f, t[i].line, kUnorderedIter,
                 "iteration over unordered container '" + t[j].text +
                     "': traversal order is nondeterministic and must not "
                     "feed charged results or serialized messages (use "
                     "std::map, or copy + sort first)");
            break;
          }
        }
      }
      // Iterator-based traversal: name.begin() / name->cbegin().
      if (IsIdent(t, i) && unordered_names.count(t[i].text) != 0 &&
          (Is(t, i + 1, ".") || Is(t, i + 1, "->")) && IsIdent(t, i + 2) &&
          (t[i + 2].text == "begin" || t[i + 2].text == "cbegin" ||
           t[i + 2].text == "rbegin") &&
          Is(t, i + 3, "(")) {
        Emit(f, t[i].line, kUnorderedIter,
             "iterator traversal of unordered container '" + t[i].text +
                 "': traversal order is nondeterministic and must not feed "
                 "charged results or serialized messages");
      }
    }
  }

  // -- FLB004 --------------------------------------------------------------

  void CheckMutexAnnotations(const FileContext& f) {
    const auto& t = f.tokens;

    // All names referenced inside FLB_* annotation macro arguments.
    std::set<std::string> annotated_names;
    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsIdent(t, i) || AnnotationMacros().count(t[i].text) == 0 ||
          !Is(t, i + 1, "(")) {
        continue;
      }
      const size_t past = SkipBalanced(t, i + 1, "(", ")");
      for (size_t j = i + 2; j + 1 < past; ++j) {
        if (IsIdent(t, j)) annotated_names.insert(t[j].text);
      }
    }

    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsIdent(t, i)) continue;
      const bool std_mutex =
          (t[i].text == "mutex" || t[i].text == "shared_mutex" ||
           t[i].text == "recursive_mutex" || t[i].text == "timed_mutex") &&
          i >= 2 && Is(t, i - 1, "::") && Is(t, i - 2, "std");
      const bool flb_mutex = t[i].text == "Mutex";
      if (!std_mutex && !flb_mutex) continue;
      // Member declaration: `<type> name_;` — the trailing-underscore
      // member naming convention is what distinguishes members from locals.
      if (!IsIdent(t, i + 1)) continue;
      const std::string& name = t[i + 1].text;
      if (name.empty() || name.back() != '_') continue;
      // An annotation macro directly on the declaration (lock ordering,
      // typically) also counts as "visible to the analysis".
      const bool decl_annotated =
          IsIdent(t, i + 2) && AnnotationMacros().count(t[i + 2].text) != 0;
      if (!(Is(t, i + 2, ";") || decl_annotated)) continue;
      if (std_mutex) {
        Emit(f, t[i].line, kMutexAnnotation,
             "raw std::" + t[i].text + " member '" + name +
                 "': use common::Mutex (src/common/mutex.h) so "
                 "-Wthread-safety can see the capability");
        continue;
      }
      if (!decl_annotated && annotated_names.count(name) == 0) {
        Emit(f, t[i].line, kMutexAnnotation,
             "mutex member '" + name +
                 "' has no thread-safety annotation referencing it: add "
                 "FLB_GUARDED_BY(" + name + ") to the state it protects "
                 "(or FLB_REQUIRES/FLB_ACQUIRE on the functions that use "
                 "it)");
      }
    }
  }

  // -- FLB005 --------------------------------------------------------------

  // Walks left over a `base::qualifier.member->` chain; returns the index
  // of the token *before* the chain, or npos when the chain starts the
  // token stream.
  static size_t ChainStart(const std::vector<Token>& t, size_t call) {
    size_t j = call;  // index of the called identifier
    while (j > 0) {
      const std::string& prev = t[j - 1].text;
      if (prev == "::" || prev == "." || prev == "->") {
        if (j >= 2 && (IsIdent(t, j - 2) || t[j - 2].text == ")")) {
          if (t[j - 2].text == ")") {
            // Balanced back-skip over a call in the chain: foo(x).Send();
            int depth = 0;
            size_t k = j - 2;
            for (;; --k) {
              if (t[k].text == ")") ++depth;
              if (t[k].text == "(" && --depth == 0) break;
              if (k == 0) return std::string::npos;
            }
            j = k > 0 && IsIdent(t, k - 1) ? k - 1 : k;
          } else {
            j -= 2;
          }
          continue;
        }
        return j >= 2 ? j - 2 : std::string::npos;
      }
      break;
    }
    return j == 0 ? std::string::npos : j - 1;
  }

  void CheckDiscardedStatus(const FileContext& f) {
    const auto& t = f.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsIdent(t, i) || status_fns_.count(t[i].text) == 0 ||
          non_status_decls_.count(t[i].text) != 0 || !Is(t, i + 1, "(")) {
        continue;
      }
      const size_t past = SkipBalanced(t, i + 1, "(", ")");
      if (!Is(t, past, ";")) continue;  // value is consumed or chained
      const size_t before = ChainStart(t, i);
      const bool at_start =
          before == std::string::npos || t[before].text == ";" ||
          t[before].text == "{" || t[before].text == "}" ||
          t[before].text == "else" || t[before].text == "do";
      const bool void_cast = before != std::string::npos && before >= 2 &&
                             t[before].text == ")" &&
                             Is(t, before - 1, "void") &&
                             Is(t, before - 2, "(");
      const bool after_paren = before != std::string::npos &&
                               t[before].text == ")" && !void_cast;
      if (void_cast) {
        Emit(f, t[i].line, kDiscardedStatus,
             "Status/Result from '" + t[i].text + "' cast away with (void): "
             "handle the error or justify with "
             "`// flb-lint: allow(FLB005) <reason>`");
      } else if (at_start || after_paren) {
        // `after_paren` covers `if (cond) DoSend();`-style single-statement
        // bodies. A preceding identifier means this was a declaration
        // (`Status Send(...);`), not a call.
        Emit(f, t[i].line, kDiscardedStatus,
             "return value of Status/Result-returning '" + t[i].text +
                 "' is discarded: propagate with FLB_RETURN_IF_ERROR, "
                 "handle it, or justify the discard");
      }
    }
  }

  // -- FLB006 --------------------------------------------------------------

  // True when `text` names a retry/deadline budget: a loop that spins on
  // transient failures must bound itself by one of these.
  static bool IsBudgetIdent(const std::string& text) {
    std::string lower(text);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    // The trigger identifiers themselves mention "deadline"; only a
    // non-trigger deadline reference (Deadline, run_deadline, CheckDeadline,
    // deadline->Check, ...) counts as consulting a budget.
    if (lower.find("deadline") != std::string::npos &&
        lower.find("exceeded") == std::string::npos) {
      return true;
    }
    return lower.find("attempt") != std::string::npos ||
           lower.find("retr") != std::string::npos ||  // retry, retries
           lower.find("tries") != std::string::npos ||
           lower.find("budget") != std::string::npos ||
           lower.find("remaining") != std::string::npos ||
           lower.find("expired") != std::string::npos ||
           lower.find("backoff") != std::string::npos;
  }

  void CheckUnboundedRetry(const FileContext& f) {
    const auto& t = f.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsIdent(t, i)) continue;
      size_t body_begin = 0;  // first token of the loop body
      if ((t[i].text == "while" || t[i].text == "for") &&
          Is(t, i + 1, "(")) {
        body_begin = SkipBalanced(t, i + 1, "(", ")");
      } else if (t[i].text == "do" && Is(t, i + 1, "{")) {
        body_begin = i + 1;
      } else {
        continue;
      }
      if (body_begin >= t.size()) continue;
      // Body = braced block when present, else the single statement.
      size_t body_end;
      if (Is(t, body_begin, "{")) {
        body_end = SkipBalanced(t, body_begin, "{", "}");
      } else {
        body_end = body_begin;
        while (body_end < t.size() && t[body_end].text != ";") ++body_end;
      }
      bool retries_transient = false;  // continue + IsUnavailable/-Deadline
      bool has_continue = false;
      bool has_budget = false;
      for (size_t j = i; j < body_end && j < t.size(); ++j) {
        if (!IsIdent(t, j)) continue;
        const std::string& text = t[j].text;
        if (text == "continue") has_continue = true;
        if (text == "IsUnavailable" || text == "IsDeadlineExceeded") {
          retries_transient = true;
        }
        if (IsBudgetIdent(text)) has_budget = true;
      }
      if (retries_transient && has_continue && !has_budget) {
        Emit(f, t[i].line, kUnboundedRetry,
             "loop retries on kUnavailable/kDeadlineExceeded without "
             "consulting a budget: bound it with an attempt counter or a "
             "common::Deadline so a dead peer cannot spin forever");
      }
    }
  }

  const Options& opts_;
  Report* report_;
  std::set<std::string> status_fns_;
  // Names also declared with a non-Status return type somewhere in the
  // tree; ambiguous, so FLB005 skips them.
  std::set<std::string> non_status_decls_;
};

std::string NormalizePath(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> rules = {
      {kWallClock, "wall-clock",
       "wall-clock/time APIs outside common/timer.h (simulated time must "
       "come from the SimClock)"},
      {kEntropy, "entropy",
       "unseeded randomness outside common/rng (breaks bit-identical "
       "replay)"},
      {kUnorderedIter, "unordered-iter",
       "iteration over std::unordered_{map,set} (order nondeterminism in "
       "charged/serialized paths)"},
      {kMutexAnnotation, "mutex-annotation",
       "mutex members invisible to -Wthread-safety (raw std::mutex, or no "
       "FLB_* annotation references the mutex)"},
      {kDiscardedStatus, "discarded-status",
       "Status/Result<T> return values dropped without handling or an "
       "inline justification"},
      {kUnboundedRetry, "unbounded-retry",
       "retry loops on kUnavailable/kDeadlineExceeded that never consult "
       "an attempt counter or common::Deadline (can spin forever on a "
       "dead peer)"},
  };
  return rules;
}

std::vector<AllowEntry> DefaultAllowlist() {
  return {
      // WallTimer is the one sanctioned wall-clock reader (benches and the
      // CPU-HE cost calibration measure real elapsed time through it).
      {kWallClock, "src/common/timer.h"},
      // common::Rng owns the platform's entropy; everything else derives
      // deterministic streams from it.
      {kEntropy, "src/common/rng.h"},
      {kEntropy, "src/common/rng.cc"},
      // The host profiler IS the sanctioned wall plane: it timestamps real
      // worker scheduling for the second (wall) trace clock domain and the
      // flb.host.* metrics. Nothing it reads feeds charged accounting.
      {kWallClock, "src/obs/host_profiler.cc"},
  };
}

Options::Options() : allowlist(DefaultAllowlist()) {}

bool LoadAllowlistFile(const std::string& path, std::vector<AllowEntry>* out,
                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open allowlist: " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string rule, suffix, extra;
    if (!(fields >> rule)) continue;  // blank / comment-only line
    if (!(fields >> suffix) || (fields >> extra)) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(lineno) +
                 ": expected `<rule> <path-suffix>`";
      }
      return false;
    }
    out->push_back(AllowEntry{rule, NormalizePath(suffix)});
  }
  return true;
}

Report LintFiles(const std::vector<FileInput>& files, const Options& opts) {
  Report report;
  Linter linter(opts, &report);

  std::vector<FileContext> contexts;
  contexts.reserve(files.size());
  for (const FileInput& file : files) {
    FileContext ctx;
    ctx.path = NormalizePath(file.path);
    Tokenize(file.content, &ctx.tokens, &ctx.suppressions);
    contexts.push_back(std::move(ctx));
  }
  for (const FileContext& ctx : contexts) {
    linter.IndexStatusFunctions(ctx);
  }
  for (const FileContext& ctx : contexts) {
    linter.LintOne(ctx);
    ++report.files_scanned;
  }
  std::sort(report.violations.begin(), report.violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return report;
}

bool ReadTree(const std::string& root, std::vector<FileInput>* out,
              std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    if (error != nullptr) *error = "not a directory: " + root;
    return false;
  }
  std::vector<std::string> paths;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      if (error != nullptr) *error = "walk failed under " + root;
      return false;
    }
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
      paths.push_back(it->path().string());
    }
  }
  std::sort(paths.begin(), paths.end());  // deterministic scan order

  out->reserve(out->size() + paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      if (error != nullptr) *error = "cannot read " + path;
      return false;
    }
    std::ostringstream content;
    content << in.rdbuf();
    out->push_back(FileInput{path, content.str()});
  }
  return true;
}

bool LintTree(const std::string& root, const Options& opts, Report* report,
              std::string* error) {
  std::vector<FileInput> files;
  if (!ReadTree(root, &files, error)) return false;
  *report = LintFiles(files, opts);
  return true;
}

std::string ReportToBenchJson(const Report& report) {
  std::map<std::string, uint64_t> by_rule;
  for (const RuleInfo& rule : Rules()) by_rule[rule.id] = 0;
  for (const Violation& v : report.violations) ++by_rule[v.rule];

  std::ostringstream out;
  out << "{\"bench\":\"flb_lint\",\"results\":[";
  bool first = true;
  auto row = [&](const std::string& section, const std::string& metric,
                 uint64_t value) {
    out << (first ? "\n" : ",\n") << "{\"bench\":\"flb_lint\",\"section\":\""
        << section << "\",\"metric\":\"" << metric << "\",\"value\":" << value
        << ",\"unit\":\"count\"}";
    first = false;
  };
  row("lint", "flb.lint.rules_run", Rules().size());
  row("lint", "flb.lint.files_scanned", report.files_scanned);
  row("lint", "flb.lint.violations", report.violations.size());
  row("lint", "flb.lint.suppressed", report.suppressed);
  row("lint", "flb.lint.allowlisted", report.allowlisted);
  row("lint", "flb.lint.unjustified_allows", report.unjustified_allows);
  for (const auto& [rule, count] : by_rule) {
    row("rules", "flb.lint.violations_by_rule." + rule, count);
  }
  out << "\n]}";
  return out.str();
}

}  // namespace flb::lint
