// flb_lint: FLBooster's domain-invariant static-analysis pass.
//
// The platform's reproducibility claims rest on invariants a C++ compiler
// cannot see: simulated time and byte accounting must be deterministic and
// bit-identical across thread counts, so no wall-clock reads, no unseeded
// entropy, and no unordered-container iteration may leak into charged paths
// or serialized messages; and every mutex introduced by the host execution
// engine must be visible to Clang's thread-safety analysis. This tool
// enforces those invariants with a tokenizer-based scan of the source tree
// (no libclang dependency), a fixed rule table, per-file allowlists, and
// inline justification comments.
//
// Rules (the table below is mirrored in DESIGN.md):
//   FLB001 wall-clock        banned wall-clock/time APIs in simulated paths
//   FLB002 entropy           banned unseeded randomness outside common::Rng
//   FLB003 unordered-iter    iteration over std::unordered_{map,set}
//   FLB004 mutex-annotation  mutex members without thread-safety annotations
//   FLB005 discarded-status  Status/Result<T> return values silently dropped
//
// Suppression: append `// flb-lint: allow(FLB00N) <reason>` to the line (or
// `allow-next-line(...)` on the line above). The reason is mandatory — a
// bare allow() does not suppress, which is how "explicitly justified"
// discards are enforced. Allowlists exempt whole files from a rule (the
// compiled-in defaults cover common/timer.h for FLB001 and common/rng.* for
// FLB002; `--allowlist FILE` adds `<rule> <path-suffix>` lines).

#ifndef FLB_TOOLS_FLB_LINT_LINT_H_
#define FLB_TOOLS_FLB_LINT_LINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace flb::lint {

struct RuleInfo {
  const char* id;       // "FLB001"
  const char* name;     // "wall-clock"
  const char* summary;  // one-line description for --list-rules / docs
};

// The fixed rule table, in rule-ID order.
const std::vector<RuleInfo>& Rules();

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;  // rule ID, e.g. "FLB003"
  std::string message;
};

// One allowlist entry: `rule` ("FLB001" or "*") is exempt in every file
// whose normalized path ends with `path_suffix`.
struct AllowEntry {
  std::string rule;
  std::string path_suffix;
};

struct Options {
  std::vector<AllowEntry> allowlist;  // seeded with DefaultAllowlist()
  Options();
};

// The compiled-in exemptions: the two files that legitimately own
// wall-clock and entropy primitives.
std::vector<AllowEntry> DefaultAllowlist();

// Parses `<rule> <path-suffix>` lines (# comments, blank lines ignored)
// into `out`. Returns false with `error` set on malformed lines.
bool LoadAllowlistFile(const std::string& path, std::vector<AllowEntry>* out,
                       std::string* error);

struct FileInput {
  std::string path;
  std::string content;
};

// Reads every *.h / *.cc / *.cpp under `root` (recursive, deterministic
// sorted order) into `out`. Shared by LintTree and flb_analyze's tree
// walk. Returns false with `error` set when the root is missing or a file
// cannot be read.
bool ReadTree(const std::string& root, std::vector<FileInput>* out,
              std::string* error);

struct Report {
  std::vector<Violation> violations;  // sorted by (file, line, rule)
  uint64_t files_scanned = 0;
  uint64_t suppressed = 0;    // silenced by inline justified allow()
  uint64_t allowlisted = 0;   // silenced by a file allowlist entry
  uint64_t unjustified_allows = 0;  // allow() with no reason (not silenced)
};

// Lints a set of in-memory files as one translation set: the index of
// Status/Result-returning function names (rule FLB005) is built across all
// of them before any file is checked.
Report LintFiles(const std::vector<FileInput>& files, const Options& opts);

// Walks `root` recursively for *.h / *.cc / *.cpp (deterministic sorted
// order) and lints the tree. Returns false with `error` set when the root
// is missing or a file cannot be read.
bool LintTree(const std::string& root, const Options& opts, Report* report,
              std::string* error);

// BenchJson-style machine-readable summary (`{"bench":"flb_lint",
// "results":[{bench,section,metric,value,unit}, ...]}`), schema-compatible
// with scripts/validate_obs_json.sh's BENCH_*.json check.
std::string ReportToBenchJson(const Report& report);

}  // namespace flb::lint

#endif  // FLB_TOOLS_FLB_LINT_LINT_H_
