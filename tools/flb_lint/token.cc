#include "tools/flb_lint/token.h"

#include <algorithm>
#include <cctype>

namespace flb::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses "allow(FLB001,FLB005) reason" / "allow-next-line(FLB001) reason"
// from a comment body. Returns the target line (comment line or the next)
// or 0 when the comment is not a flb-lint directive.
int ParseDirective(const std::string& comment, int comment_line,
                   Suppression* out) {
  const size_t tag = comment.find("flb-lint:");
  if (tag == std::string::npos) return 0;
  size_t pos = comment.find_first_not_of(" \t", tag + 9);
  if (pos == std::string::npos) return 0;
  int target = comment_line;
  const std::string kNextLine = "allow-next-line(";
  const std::string kLine = "allow(";
  size_t open;
  if (comment.compare(pos, kNextLine.size(), kNextLine) == 0) {
    target = comment_line + 1;
    open = pos + kNextLine.size();
  } else if (comment.compare(pos, kLine.size(), kLine) == 0) {
    open = pos + kLine.size();
  } else {
    return 0;
  }
  const size_t close = comment.find(')', open);
  if (close == std::string::npos) return 0;
  std::string rule;
  for (size_t i = open; i <= close; ++i) {
    const char c = comment[i];
    if (c == ',' || c == ')') {
      if (!rule.empty()) out->rules.insert(rule);
      rule.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      rule += c;
    }
  }
  // The justification is whatever follows the rule list (":" optional).
  size_t reason = comment.find_first_not_of(" \t:", close + 1);
  out->justified = reason != std::string::npos;
  return target;
}

}  // namespace

bool Is(const std::vector<Token>& t, size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

bool IsIdent(const std::vector<Token>& t, size_t i) {
  return i < t.size() && t[i].kind == Token::Kind::kIdent;
}

bool IsString(const std::vector<Token>& t, size_t i) {
  return i < t.size() && t[i].kind == Token::Kind::kString;
}

size_t SkipBalanced(const std::vector<Token>& t, size_t open,
                    const char* open_text, const char* close_text) {
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    if (t[i].text == open_text) ++depth;
    if (t[i].text == close_text && --depth == 0) return i + 1;
    // Template-argument scans bail out on statement glue: a stray `<` was a
    // comparison, not a bracket.
    if (open_text[0] == '<' && (t[i].text == ";" || t[i].text == "{")) break;
  }
  return t.size();
}

void Tokenize(const std::string& src, std::vector<Token>* tokens,
              SuppressionMap* suppressions) {
  int line = 1;
  size_t i = 0;
  const size_t n = src.size();
  auto push = [&](Token::Kind kind, std::string text) {
    tokens->push_back(Token{kind, std::move(text), line});
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment (suppression directives live here).
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const size_t end = src.find('\n', i);
      const std::string body =
          src.substr(i + 2, (end == std::string::npos ? n : end) - i - 2);
      Suppression sup;
      if (const int target = ParseDirective(body, line, &sup)) {
        (*suppressions)[target] = sup;
      }
      i = end == std::string::npos ? n : end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      Suppression sup;
      const std::string body = src.substr(i + 2, j - i - 2);
      if (const int target = ParseDirective(body, start_line, &sup)) {
        (*suppressions)[target] = sup;
      }
      i = j + 1 < n ? j + 2 : n;
      continue;
    }
    // Raw string literal R"delim(...)delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(') delim += src[p++];
      const std::string closer = ")" + delim + "\"";
      size_t end = src.find(closer, p);
      if (end == std::string::npos) end = n;
      push(Token::Kind::kString,
           src.substr(p + 1, end > p + 1 ? end - p - 1 : 0));
      for (size_t j = i; j < std::min(end, n); ++j) {
        if (src[j] == '\n') ++line;
      }
      i = std::min(end + closer.size(), n);
      continue;
    }
    // String / char literal: emitted as a kString token carrying the
    // contents (quotes stripped) so `#include "..."` targets resolve.
    if (c == '"' || c == '\'') {
      size_t j = i + 1;
      std::string body;
      while (j < n && src[j] != c) {
        if (src[j] == '\\' && j + 1 < n) body += src[j++];
        body += src[j];
        ++j;
      }
      push(Token::Kind::kString, body);
      i = j + 1;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(src[j])) ++j;
      push(Token::Kind::kIdent, src.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (IsIdentChar(src[j]) || src[j] == '.')) ++j;
      push(Token::Kind::kNumber, src.substr(i, j - i));
      i = j;
      continue;
    }
    // Multi-char punctuation the rules care about.
    static const char* kTwoChar[] = {"::", "->", "<<", ">>", "<=",
                                     ">=", "==", "!=", "&&", "||"};
    bool matched = false;
    for (const char* two : kTwoChar) {
      if (c == two[0] && i + 1 < n && src[i + 1] == two[1]) {
        push(Token::Kind::kPunct, two);
        i += 2;
        matched = true;
        break;
      }
    }
    if (!matched) {
      push(Token::Kind::kPunct, std::string(1, c));
      ++i;
    }
  }
}

}  // namespace flb::lint
