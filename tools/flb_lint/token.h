// Shared C++ tokenizer for the repo-native static-analysis tools
// (tools/flb_lint and tools/flb_analyze).
//
// The tokenizer produces identifiers, numbers, and (multi-char)
// punctuation with line numbers. Comments and string/char literals are
// consumed, never tokenized, so banned names inside literals or prose
// cannot trip a rule; `// flb-lint: allow(...)` suppression directives are
// harvested from comments while they are skipped. No preprocessor is run —
// `#` and the following tokens appear in the stream, which is how the
// include-graph scan reads `#include "..."` lines.

#ifndef FLB_TOOLS_FLB_LINT_TOKEN_H_
#define FLB_TOOLS_FLB_LINT_TOKEN_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace flb::lint {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

struct Suppression {
  std::set<std::string> rules;  // empty set = malformed allow()
  bool justified = false;       // a non-empty reason followed the rule list
};

// line -> suppression harvested from `// flb-lint: allow(...)` comments.
using SuppressionMap = std::map<int, Suppression>;

// Tokenizes `src`. String/char literals are appended as kString tokens
// carrying their *contents* (quotes stripped) so include directives can be
// resolved; rules that only look at kIdent tokens are unaffected.
void Tokenize(const std::string& src, std::vector<Token>* tokens,
              SuppressionMap* suppressions);

// ---- token-stream helpers -------------------------------------------------

bool Is(const std::vector<Token>& t, size_t i, const char* text);
bool IsIdent(const std::vector<Token>& t, size_t i);
bool IsString(const std::vector<Token>& t, size_t i);

// Index just past a balanced bracket run starting at `open` (which must be
// the opening bracket); t.size() when unbalanced. Template-argument scans
// (`<`...`>`) bail out on statement glue (`;` or `{`): a stray `<` was a
// comparison, not a bracket.
size_t SkipBalanced(const std::vector<Token>& t, size_t open,
                    const char* open_text, const char* close_text);

}  // namespace flb::lint

#endif  // FLB_TOOLS_FLB_LINT_TOKEN_H_
